// Package serve turns the SSMDVFS model into a long-running decision
// service: the paper's ASIC engine produces one decision per cluster per
// 10 µs epoch, and this package is the software equivalent — a concurrent
// daemon that answers "which operating level next, and how many
// instructions do you expect?" over HTTP/JSON (debuggable) and a compact
// length-prefixed binary protocol over TCP (the hot path), with
// zero-downtime model hot-swap and latency/throughput metrics.
package serve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/infer"
	"ssmdvfs/internal/provenance"
	"ssmdvfs/internal/telemetry"
)

// Wire protocol: every message is one length-prefixed frame,
//
//	uint32  payload length (big endian, <= MaxFrame)
//	payload
//
// and every payload starts with a fixed header,
//
//	uint32  magic   "SDVF"
//	uint8   version (2)
//	uint8   message type
//
// A decide request carries a batch of rows, each a performance-loss
// preset followed by the full 47-counter feature vector (feature
// selection happens inside the model, exactly as in the simulator loop):
//
//	uint16  row count (>= 1)
//	uint16  feature dimension (must equal counters.Num)
//	rows    count × (1+dim) float64, preset first
//
// A decide response carries one status byte, then per row the chosen
// level, the provenance reason that produced it, and the predicted
// next-epoch instruction count:
//
//	uint8   status (0 = OK; otherwise count is 0)
//	uint16  row count
//	rows    count × (uint8 level, uint8 reason, float64 predicted instructions)
//
// Version history: v1 response rows had no reason byte; v2 added it so
// clients can tell a model answer from a degraded one; v3 (current)
// added keyed multi-row frames for fleet routing — every request row
// carries its (gpu, cluster) identity so a router can coalesce rows from
// many clients into one frame per replica and demultiplex the answers —
// plus an explicit hello/ack version negotiation and a structured error
// message, so a mismatched peer gets a typed refusal instead of a hung
// read. A v3 server answers v2 frames with v2 responses, so old clients
// keep working unchanged.
const (
	Magic   = 0x53445646 // "SDVF"
	Version = 2          // the v2 frame version byte (unkeyed rows)

	// Version3 is the keyed-frame protocol version. VersionMin/VersionMax
	// bound what a server accepts and what Hello negotiation can agree on.
	Version3   = 3
	VersionMin = 2
	VersionMax = 3

	// MsgDecide and MsgDecisions are the v2 request/response types.
	MsgDecide    = 1
	MsgDecisions = 2

	// MsgDecideKeyed and MsgDecisionsKeyed are the v3 keyed batch
	// request/response types (rows carry gpu/cluster identity; response
	// rows carry the shard that answered and a rerouted flag).
	MsgDecideKeyed    = 3
	MsgDecisionsKeyed = 4

	// MsgHello and MsgHelloAck negotiate the protocol version on connect:
	// the client offers its [min,max] supported versions, the server
	// answers with the highest version both sides speak plus its role
	// (daemon or router) and shard count.
	MsgHello    = 5
	MsgHelloAck = 6

	// MsgError is a structured protocol error: a code and a human-readable
	// message, sent before the server drops a connection it cannot serve.
	MsgError = 7

	// MsgDecideTraced and MsgDecisionsTraced are the v3 traced batch
	// request/response types: a keyed frame plus distributed-trace
	// context on the request (trace ID, parent span ID, flags) and
	// per-hop latency attribution on the response (queue, coalesce,
	// dispatch, inference microseconds). Only sent to peers whose
	// hello-ack advertises HelloFlagTracing, so v2/v3 peers without
	// tracing support never see them.
	MsgDecideTraced    = 8
	MsgDecisionsTraced = 9

	// MaxFrame bounds a frame payload; anything larger is rejected before
	// allocation, so a corrupt length prefix cannot balloon memory.
	MaxFrame = 1 << 20

	// MaxBatch bounds the rows in one request frame.
	MaxBatch = 1024

	// StatusOK and StatusError are the response status codes.
	StatusOK    = 0
	StatusError = 1

	headerLen = 6
)

// Structured protocol-error codes carried by MsgError frames.
const (
	ErrCodeBadMagic = 1 // peer is not speaking this protocol at all
	ErrCodeVersion  = 2 // version outside [VersionMin, VersionMax]
	ErrCodeBadFrame = 3 // recognized header but malformed body
)

// HelloFlagRouter in a HelloAck marks the peer as a fleet router rather
// than a single-GPU daemon. HelloFlagTracing advertises that the peer
// understands MsgDecideTraced/MsgDecisionsTraced — a protocol
// capability, present whether or not the peer currently has a span
// tracer attached.
const (
	HelloFlagRouter  = 1
	HelloFlagTracing = 2
)

// Hello is the result of version negotiation: the agreed protocol
// version, whether the peer is a router, whether it accepts traced
// frames, (for routers) its shard count, the inference backend the
// peer serves with, and the lineage generation of the model it is
// serving. Backend is empty when the peer predates the backend byte (a
// legacy 4-byte ack body) or chose not to advertise one; Generation is 0
// when the peer predates the generation word or serves an unversioned
// offline artifact.
type Hello struct {
	Version    int
	Router     bool
	Tracing    bool
	Shards     int
	Backend    infer.Kind
	Generation int
}

// Backend codes carried in the hello-ack's trailing byte. Zero — also
// what a legacy peer's absent byte decodes as — means unspecified.
const (
	backendCodeNone    = 0
	backendCodeFloat64 = 1
	backendCodeInt8    = 2
)

func backendCode(k infer.Kind) byte {
	switch k {
	case infer.KindFloat64:
		return backendCodeFloat64
	case infer.KindInt8:
		return backendCodeInt8
	}
	return backendCodeNone
}

func backendFromCode(c byte) infer.Kind {
	switch c {
	case backendCodeFloat64:
		return infer.KindFloat64
	case backendCodeInt8:
		return infer.KindInt8
	}
	return ""
}

// HopTimings is the per-hop latency attribution a traced response
// carries back up the stack, each in microseconds (saturating at
// ~71 min, far beyond any serving timeout): time the frame's rows spent
// in an admission queue, lingering in the coalescer, in the dispatch
// round trip to a replica, and in model inference. A hop fills only the
// fields it knows — a daemon answering directly sets InferUs alone; the
// router adds queue/coalesce/dispatch on the way back; the client
// derives network time as total minus the attributed hops.
type HopTimings struct {
	QueueUs    uint32
	CoalesceUs uint32
	DispatchUs uint32
	InferUs    uint32
}

// Merge folds another attribution into h taking the per-field maximum —
// the aggregation a router uses when one client frame was answered by
// several replica batches.
func (h *HopTimings) Merge(o HopTimings) {
	if o.QueueUs > h.QueueUs {
		h.QueueUs = o.QueueUs
	}
	if o.CoalesceUs > h.CoalesceUs {
		h.CoalesceUs = o.CoalesceUs
	}
	if o.DispatchUs > h.DispatchUs {
		h.DispatchUs = o.DispatchUs
	}
	if o.InferUs > h.InferUs {
		h.InferUs = o.InferUs
	}
}

// DurUs32 converts a duration to saturating uint32 microseconds, the
// unit HopTimings carries on the wire.
func DurUs32(d time.Duration) uint32 {
	us := d.Microseconds()
	if us < 0 {
		return 0
	}
	if us > math.MaxUint32 {
		return math.MaxUint32
	}
	return uint32(us)
}

// ProtoError is the decoded form of a MsgError frame — the structured
// refusal a v3 server sends instead of silently dropping the connection.
type ProtoError struct {
	Code int
	Msg  string
}

func (e *ProtoError) Error() string {
	return fmt.Sprintf("serve: protocol error %d: %s", e.Code, e.Msg)
}

// Request is one decision request row.
type Request struct {
	// Preset is the performance-loss preset for this decision.
	Preset float64
	// Features is the full 47-counter vector of the finished epoch.
	Features []float64
	// GPU and Cluster identify the requesting cluster for fleet routing
	// (v3 keyed frames). -1 means no identity (v2 rows, direct clients).
	GPU     int32
	Cluster int32
}

// Decision is one decision response row.
type Decision struct {
	// Level is the operating-point class the Decision-maker chose.
	Level int
	// Reason says which path produced the decision (model, or one of the
	// degradation paths).
	Reason provenance.Reason
	// PredInstr is the Calibrator's next-epoch instruction estimate.
	PredInstr float64
	// Shard is the fleet shard index that answered (v3 keyed responses);
	// -1 when no router was involved or the row was shed locally.
	Shard int
	// Rerouted marks a row that was re-submitted to a different replica
	// after its home shard failed (v3 keyed responses only).
	Rerouted bool
}

func putHeader(buf []byte, version, msgType byte) {
	binary.BigEndian.PutUint32(buf, Magic)
	buf[4] = version
	buf[5] = msgType
}

// parseHeader validates the magic and version range and returns the
// frame's version and message type. Errors are *ProtoError so transports
// can answer them with a structured MsgError frame.
func parseHeader(payload []byte) (version, msgType byte, err error) {
	if len(payload) < headerLen {
		return 0, 0, &ProtoError{Code: ErrCodeBadFrame, Msg: fmt.Sprintf("frame too short for header (%d bytes)", len(payload))}
	}
	if m := binary.BigEndian.Uint32(payload); m != Magic {
		return 0, 0, &ProtoError{Code: ErrCodeBadMagic, Msg: fmt.Sprintf("bad magic %#x", m)}
	}
	if payload[4] < VersionMin || payload[4] > VersionMax {
		return 0, 0, &ProtoError{Code: ErrCodeVersion, Msg: fmt.Sprintf("unsupported protocol version %d (speak %d..%d)", payload[4], VersionMin, VersionMax)}
	}
	return payload[4], payload[5], nil
}

func checkHeader(payload []byte, wantVersion, wantType byte) error {
	v, t, err := parseHeader(payload)
	if err != nil {
		return err
	}
	if t == MsgError {
		// Structured refusals surface as *ProtoError whatever version the
		// caller expected.
		return DecodeErrorFrame(payload)
	}
	if v != wantVersion {
		return fmt.Errorf("serve: unexpected protocol version %d, want %d", v, wantVersion)
	}
	if t != wantType {
		return fmt.Errorf("serve: unexpected message type %d, want %d", t, wantType)
	}
	return nil
}

// writeFrame writes the length prefix and payload.
func writeFrame(w io.Writer, payload []byte) error {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(payload)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame payload into buf (grown if needed) and
// returns it. Oversized frames are rejected without allocation.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var n [4]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return nil, err
	}
	size := binary.BigEndian.Uint32(n[:])
	if size > MaxFrame {
		return nil, fmt.Errorf("serve: frame of %d bytes exceeds limit %d", size, MaxFrame)
	}
	if uint32(cap(buf)) < size {
		buf = make([]byte, size)
	}
	buf = buf[:size]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("serve: truncated frame: %w", err)
	}
	return buf, nil
}

// AppendRequestFrame appends an encoded request payload (without the
// length prefix) for the given rows to dst and returns it.
func AppendRequestFrame(dst []byte, rows []Request) ([]byte, error) {
	if len(rows) == 0 || len(rows) > MaxBatch {
		return nil, fmt.Errorf("serve: batch of %d rows outside [1,%d]", len(rows), MaxBatch)
	}
	dim := len(rows[0].Features)
	if dim != counters.Num {
		return nil, fmt.Errorf("serve: feature dimension %d, want %d", dim, counters.Num)
	}
	need := headerLen + 4 + len(rows)*(1+dim)*8
	off := len(dst)
	dst = append(dst, make([]byte, need)...)
	b := dst[off:]
	putHeader(b, Version, MsgDecide)
	binary.BigEndian.PutUint16(b[6:], uint16(len(rows)))
	binary.BigEndian.PutUint16(b[8:], uint16(dim))
	p := 10
	for _, row := range rows {
		if len(row.Features) != dim {
			return nil, fmt.Errorf("serve: ragged batch: row has %d features, want %d", len(row.Features), dim)
		}
		binary.BigEndian.PutUint64(b[p:], math.Float64bits(row.Preset))
		p += 8
		for _, f := range row.Features {
			binary.BigEndian.PutUint64(b[p:], math.Float64bits(f))
			p += 8
		}
	}
	return dst, nil
}

// DecodeRequestFrame parses a request payload. The returned rows reuse
// scratch (resized as needed) so a serving loop can decode without
// allocating; feature slices alias scratch's backing arrays.
func DecodeRequestFrame(payload []byte, scratch []Request) ([]Request, error) {
	if err := checkHeader(payload, Version, MsgDecide); err != nil {
		return nil, err
	}
	if len(payload) < headerLen+4 {
		return nil, fmt.Errorf("serve: request frame too short (%d bytes)", len(payload))
	}
	count := int(binary.BigEndian.Uint16(payload[6:]))
	dim := int(binary.BigEndian.Uint16(payload[8:]))
	if count == 0 || count > MaxBatch {
		return nil, fmt.Errorf("serve: batch of %d rows outside [1,%d]", count, MaxBatch)
	}
	if dim != counters.Num {
		return nil, fmt.Errorf("serve: feature dimension %d, want %d", dim, counters.Num)
	}
	want := headerLen + 4 + count*(1+dim)*8
	if len(payload) != want {
		return nil, fmt.Errorf("serve: request frame is %d bytes, want %d for %d rows", len(payload), want, count)
	}
	if cap(scratch) < count {
		scratch = append(scratch[:cap(scratch)], make([]Request, count-cap(scratch))...)
	}
	scratch = scratch[:count]
	p := headerLen + 4
	for i := range scratch {
		scratch[i].GPU, scratch[i].Cluster = -1, -1 // v2 rows carry no identity
		scratch[i].Preset = math.Float64frombits(binary.BigEndian.Uint64(payload[p:]))
		p += 8
		if cap(scratch[i].Features) < dim {
			scratch[i].Features = make([]float64, dim)
		}
		feats := scratch[i].Features[:dim]
		for j := range feats {
			feats[j] = math.Float64frombits(binary.BigEndian.Uint64(payload[p:]))
			p += 8
		}
		scratch[i].Features = feats
	}
	return scratch, nil
}

// AppendResponseFrame appends an encoded response payload to dst.
func AppendResponseFrame(dst []byte, status byte, decs []Decision) ([]byte, error) {
	if len(decs) > MaxBatch {
		return nil, fmt.Errorf("serve: batch of %d rows exceeds %d", len(decs), MaxBatch)
	}
	need := headerLen + 3 + len(decs)*10
	off := len(dst)
	dst = append(dst, make([]byte, need)...)
	b := dst[off:]
	putHeader(b, Version, MsgDecisions)
	b[6] = status
	binary.BigEndian.PutUint16(b[7:], uint16(len(decs)))
	p := 9
	for _, d := range decs {
		if d.Level < 0 || d.Level > 255 {
			return nil, fmt.Errorf("serve: level %d does not fit the wire format", d.Level)
		}
		b[p] = byte(d.Level)
		b[p+1] = byte(d.Reason)
		binary.BigEndian.PutUint64(b[p+2:], math.Float64bits(d.PredInstr))
		p += 10
	}
	return dst, nil
}

// DecodeResponseFrame parses a response payload, reusing scratch.
func DecodeResponseFrame(payload []byte, scratch []Decision) ([]Decision, error) {
	if err := checkHeader(payload, Version, MsgDecisions); err != nil {
		return nil, err
	}
	if len(payload) < headerLen+3 {
		return nil, fmt.Errorf("serve: response frame too short (%d bytes)", len(payload))
	}
	if payload[6] != StatusOK {
		return nil, fmt.Errorf("serve: server reported error status %d", payload[6])
	}
	count := int(binary.BigEndian.Uint16(payload[7:]))
	want := headerLen + 3 + count*10
	if len(payload) != want {
		return nil, fmt.Errorf("serve: response frame is %d bytes, want %d for %d rows", len(payload), want, count)
	}
	if cap(scratch) < count {
		scratch = make([]Decision, count)
	}
	scratch = scratch[:count]
	p := headerLen + 3
	for i := range scratch {
		scratch[i].Level = int(payload[p])
		scratch[i].Reason = provenance.Reason(payload[p+1])
		scratch[i].PredInstr = math.Float64frombits(binary.BigEndian.Uint64(payload[p+2:]))
		scratch[i].Shard, scratch[i].Rerouted = -1, false // v2 rows carry no shard
		p += 10
	}
	return scratch, nil
}

// A v3 keyed request frame (MsgDecideKeyed, version 3) carries, after
// the header,
//
//	uint16  row count (>= 1)
//	uint16  feature dimension (must equal counters.Num)
//	rows    count × (uint32 gpu, uint32 cluster, (1+dim) float64)
//
// and the matching keyed response (MsgDecisionsKeyed),
//
//	uint8   status
//	uint16  row count
//	rows    count × (uint8 level, uint8 reason, uint8 flags,
//	                 uint16 shard, float64 predicted instructions)
//
// where flags bit 0 marks a rerouted row and shard 0xffff means "no
// shard" (a daemon answering keyed frames directly, or a local shed).
const (
	keyedReqRowFixed = 4 + 4 // gpu + cluster, before the float64s
	keyedRespRow     = 1 + 1 + 1 + 2 + 8
	decFlagRerouted  = 1
	shardNone        = 0xffff
)

// AppendKeyedRequestFrame appends an encoded v3 keyed request payload to
// dst. Every row must carry a non-negative GPU and Cluster.
func AppendKeyedRequestFrame(dst []byte, rows []Request) ([]byte, error) {
	if len(rows) == 0 || len(rows) > MaxBatch {
		return nil, fmt.Errorf("serve: batch of %d rows outside [1,%d]", len(rows), MaxBatch)
	}
	dim := len(rows[0].Features)
	if dim != counters.Num {
		return nil, fmt.Errorf("serve: feature dimension %d, want %d", dim, counters.Num)
	}
	need := headerLen + 4 + len(rows)*(keyedReqRowFixed+(1+dim)*8)
	off := len(dst)
	dst = append(dst, make([]byte, need)...)
	b := dst[off:]
	putHeader(b, Version3, MsgDecideKeyed)
	binary.BigEndian.PutUint16(b[6:], uint16(len(rows)))
	binary.BigEndian.PutUint16(b[8:], uint16(dim))
	p := 10
	for _, row := range rows {
		if len(row.Features) != dim {
			return nil, fmt.Errorf("serve: ragged batch: row has %d features, want %d", len(row.Features), dim)
		}
		if row.GPU < 0 || row.Cluster < 0 {
			return nil, fmt.Errorf("serve: keyed row needs gpu/cluster >= 0, got (%d,%d)", row.GPU, row.Cluster)
		}
		binary.BigEndian.PutUint32(b[p:], uint32(row.GPU))
		binary.BigEndian.PutUint32(b[p+4:], uint32(row.Cluster))
		p += keyedReqRowFixed
		binary.BigEndian.PutUint64(b[p:], math.Float64bits(row.Preset))
		p += 8
		for _, f := range row.Features {
			binary.BigEndian.PutUint64(b[p:], math.Float64bits(f))
			p += 8
		}
	}
	return dst, nil
}

// DecodeKeyedRequestFrame parses a v3 keyed request payload, reusing
// scratch like DecodeRequestFrame.
func DecodeKeyedRequestFrame(payload []byte, scratch []Request) ([]Request, error) {
	if err := checkHeader(payload, Version3, MsgDecideKeyed); err != nil {
		return nil, err
	}
	if len(payload) < headerLen+4 {
		return nil, fmt.Errorf("serve: keyed request frame too short (%d bytes)", len(payload))
	}
	count := int(binary.BigEndian.Uint16(payload[6:]))
	dim := int(binary.BigEndian.Uint16(payload[8:]))
	if count == 0 || count > MaxBatch {
		return nil, fmt.Errorf("serve: batch of %d rows outside [1,%d]", count, MaxBatch)
	}
	if dim != counters.Num {
		return nil, fmt.Errorf("serve: feature dimension %d, want %d", dim, counters.Num)
	}
	want := headerLen + 4 + count*(keyedReqRowFixed+(1+dim)*8)
	if len(payload) != want {
		return nil, fmt.Errorf("serve: keyed request frame is %d bytes, want %d for %d rows", len(payload), want, count)
	}
	if cap(scratch) < count {
		scratch = append(scratch[:cap(scratch)], make([]Request, count-cap(scratch))...)
	}
	scratch = scratch[:count]
	p := headerLen + 4
	for i := range scratch {
		scratch[i].GPU = int32(binary.BigEndian.Uint32(payload[p:]))
		scratch[i].Cluster = int32(binary.BigEndian.Uint32(payload[p+4:]))
		p += keyedReqRowFixed
		scratch[i].Preset = math.Float64frombits(binary.BigEndian.Uint64(payload[p:]))
		p += 8
		if cap(scratch[i].Features) < dim {
			scratch[i].Features = make([]float64, dim)
		}
		feats := scratch[i].Features[:dim]
		for j := range feats {
			feats[j] = math.Float64frombits(binary.BigEndian.Uint64(payload[p:]))
			p += 8
		}
		scratch[i].Features = feats
	}
	return scratch, nil
}

// AppendKeyedResponseFrame appends an encoded v3 keyed response payload
// to dst, carrying each decision's shard and rerouted flag.
func AppendKeyedResponseFrame(dst []byte, status byte, decs []Decision) ([]byte, error) {
	if len(decs) > MaxBatch {
		return nil, fmt.Errorf("serve: batch of %d rows exceeds %d", len(decs), MaxBatch)
	}
	need := headerLen + 3 + len(decs)*keyedRespRow
	off := len(dst)
	dst = append(dst, make([]byte, need)...)
	b := dst[off:]
	putHeader(b, Version3, MsgDecisionsKeyed)
	b[6] = status
	binary.BigEndian.PutUint16(b[7:], uint16(len(decs)))
	p := 9
	for _, d := range decs {
		if d.Level < 0 || d.Level > 255 {
			return nil, fmt.Errorf("serve: level %d does not fit the wire format", d.Level)
		}
		b[p] = byte(d.Level)
		b[p+1] = byte(d.Reason)
		var flags byte
		if d.Rerouted {
			flags |= decFlagRerouted
		}
		b[p+2] = flags
		shard := uint16(shardNone)
		if d.Shard >= 0 && d.Shard < shardNone {
			shard = uint16(d.Shard)
		}
		binary.BigEndian.PutUint16(b[p+3:], shard)
		binary.BigEndian.PutUint64(b[p+5:], math.Float64bits(d.PredInstr))
		p += keyedRespRow
	}
	return dst, nil
}

// DecodeKeyedResponseFrame parses a v3 keyed response payload, reusing
// scratch. A MsgError frame decodes into a *ProtoError.
func DecodeKeyedResponseFrame(payload []byte, scratch []Decision) ([]Decision, error) {
	if err := checkHeader(payload, Version3, MsgDecisionsKeyed); err != nil {
		return nil, err
	}
	if len(payload) < headerLen+3 {
		return nil, fmt.Errorf("serve: keyed response frame too short (%d bytes)", len(payload))
	}
	if payload[6] != StatusOK {
		return nil, fmt.Errorf("serve: server reported error status %d", payload[6])
	}
	count := int(binary.BigEndian.Uint16(payload[7:]))
	want := headerLen + 3 + count*keyedRespRow
	if len(payload) != want {
		return nil, fmt.Errorf("serve: keyed response frame is %d bytes, want %d for %d rows", len(payload), want, count)
	}
	if cap(scratch) < count {
		scratch = make([]Decision, count)
	}
	scratch = scratch[:count]
	p := headerLen + 3
	for i := range scratch {
		scratch[i].Level = int(payload[p])
		scratch[i].Reason = provenance.Reason(payload[p+1])
		scratch[i].Rerouted = payload[p+2]&decFlagRerouted != 0
		if s := binary.BigEndian.Uint16(payload[p+3:]); s == shardNone {
			scratch[i].Shard = -1
		} else {
			scratch[i].Shard = int(s)
		}
		scratch[i].PredInstr = math.Float64frombits(binary.BigEndian.Uint64(payload[p+5:]))
		p += keyedRespRow
	}
	return scratch, nil
}

// A v3 traced request frame (MsgDecideTraced, version 3) is a keyed
// request with distributed-trace context between header and body,
//
//	uint64  trace ID
//	uint64  parent span ID
//	uint8   trace flags (telemetry.FlagSampled)
//	uint16  row count, uint16 dim, keyed rows (as MsgDecideKeyed)
//
// and the matching traced response (MsgDecisionsTraced) prepends the
// echoed trace ID and per-hop attribution to the keyed response body:
//
//	uint8   status
//	uint64  trace ID (echo)
//	uint32  queue µs, uint32 coalesce µs, uint32 dispatch µs, uint32 infer µs
//	uint16  row count, keyed rows (as MsgDecisionsKeyed)
const (
	tracedReqPrefix  = 8 + 8 + 1
	tracedRespPrefix = 8 + 4*4
)

// AppendTracedRequestFrame appends a v3 traced keyed request carrying tc
// across the process boundary.
func AppendTracedRequestFrame(dst []byte, rows []Request, tc telemetry.TraceContext) ([]byte, error) {
	if len(rows) == 0 || len(rows) > MaxBatch {
		return nil, fmt.Errorf("serve: batch of %d rows outside [1,%d]", len(rows), MaxBatch)
	}
	dim := len(rows[0].Features)
	if dim != counters.Num {
		return nil, fmt.Errorf("serve: feature dimension %d, want %d", dim, counters.Num)
	}
	need := headerLen + tracedReqPrefix + 4 + len(rows)*(keyedReqRowFixed+(1+dim)*8)
	off := len(dst)
	dst = append(dst, make([]byte, need)...)
	b := dst[off:]
	putHeader(b, Version3, MsgDecideTraced)
	binary.BigEndian.PutUint64(b[6:], tc.TraceID)
	binary.BigEndian.PutUint64(b[14:], tc.SpanID)
	b[22] = tc.Flags
	p := headerLen + tracedReqPrefix
	binary.BigEndian.PutUint16(b[p:], uint16(len(rows)))
	binary.BigEndian.PutUint16(b[p+2:], uint16(dim))
	p += 4
	for _, row := range rows {
		if len(row.Features) != dim {
			return nil, fmt.Errorf("serve: ragged batch: row has %d features, want %d", len(row.Features), dim)
		}
		if row.GPU < 0 || row.Cluster < 0 {
			return nil, fmt.Errorf("serve: keyed row needs gpu/cluster >= 0, got (%d,%d)", row.GPU, row.Cluster)
		}
		binary.BigEndian.PutUint32(b[p:], uint32(row.GPU))
		binary.BigEndian.PutUint32(b[p+4:], uint32(row.Cluster))
		p += keyedReqRowFixed
		binary.BigEndian.PutUint64(b[p:], math.Float64bits(row.Preset))
		p += 8
		for _, f := range row.Features {
			binary.BigEndian.PutUint64(b[p:], math.Float64bits(f))
			p += 8
		}
	}
	return dst, nil
}

// DecodeTracedRequestFrame parses a v3 traced keyed request, reusing
// scratch, and returns the carried trace context.
func DecodeTracedRequestFrame(payload []byte, scratch []Request) ([]Request, telemetry.TraceContext, error) {
	var tc telemetry.TraceContext
	if err := checkHeader(payload, Version3, MsgDecideTraced); err != nil {
		return nil, tc, err
	}
	if len(payload) < headerLen+tracedReqPrefix+4 {
		return nil, tc, fmt.Errorf("serve: traced request frame too short (%d bytes)", len(payload))
	}
	tc.TraceID = binary.BigEndian.Uint64(payload[6:])
	tc.SpanID = binary.BigEndian.Uint64(payload[14:])
	tc.Flags = payload[22]
	p := headerLen + tracedReqPrefix
	count := int(binary.BigEndian.Uint16(payload[p:]))
	dim := int(binary.BigEndian.Uint16(payload[p+2:]))
	if count == 0 || count > MaxBatch {
		return nil, tc, fmt.Errorf("serve: batch of %d rows outside [1,%d]", count, MaxBatch)
	}
	if dim != counters.Num {
		return nil, tc, fmt.Errorf("serve: feature dimension %d, want %d", dim, counters.Num)
	}
	want := headerLen + tracedReqPrefix + 4 + count*(keyedReqRowFixed+(1+dim)*8)
	if len(payload) != want {
		return nil, tc, fmt.Errorf("serve: traced request frame is %d bytes, want %d for %d rows", len(payload), want, count)
	}
	if cap(scratch) < count {
		scratch = append(scratch[:cap(scratch)], make([]Request, count-cap(scratch))...)
	}
	scratch = scratch[:count]
	p += 4
	for i := range scratch {
		scratch[i].GPU = int32(binary.BigEndian.Uint32(payload[p:]))
		scratch[i].Cluster = int32(binary.BigEndian.Uint32(payload[p+4:]))
		p += keyedReqRowFixed
		scratch[i].Preset = math.Float64frombits(binary.BigEndian.Uint64(payload[p:]))
		p += 8
		if cap(scratch[i].Features) < dim {
			scratch[i].Features = make([]float64, dim)
		}
		feats := scratch[i].Features[:dim]
		for j := range feats {
			feats[j] = math.Float64frombits(binary.BigEndian.Uint64(payload[p:]))
			p += 8
		}
		scratch[i].Features = feats
	}
	return scratch, tc, nil
}

// AppendTracedResponseFrame appends a v3 traced keyed response echoing
// the trace ID and carrying this hop's latency attribution.
func AppendTracedResponseFrame(dst []byte, status byte, decs []Decision, traceID uint64, hops HopTimings) ([]byte, error) {
	if len(decs) > MaxBatch {
		return nil, fmt.Errorf("serve: batch of %d rows exceeds %d", len(decs), MaxBatch)
	}
	need := headerLen + 1 + tracedRespPrefix + 2 + len(decs)*keyedRespRow
	off := len(dst)
	dst = append(dst, make([]byte, need)...)
	b := dst[off:]
	putHeader(b, Version3, MsgDecisionsTraced)
	b[6] = status
	binary.BigEndian.PutUint64(b[7:], traceID)
	binary.BigEndian.PutUint32(b[15:], hops.QueueUs)
	binary.BigEndian.PutUint32(b[19:], hops.CoalesceUs)
	binary.BigEndian.PutUint32(b[23:], hops.DispatchUs)
	binary.BigEndian.PutUint32(b[27:], hops.InferUs)
	p := headerLen + 1 + tracedRespPrefix
	binary.BigEndian.PutUint16(b[p:], uint16(len(decs)))
	p += 2
	for _, d := range decs {
		if d.Level < 0 || d.Level > 255 {
			return nil, fmt.Errorf("serve: level %d does not fit the wire format", d.Level)
		}
		b[p] = byte(d.Level)
		b[p+1] = byte(d.Reason)
		var flags byte
		if d.Rerouted {
			flags |= decFlagRerouted
		}
		b[p+2] = flags
		shard := uint16(shardNone)
		if d.Shard >= 0 && d.Shard < shardNone {
			shard = uint16(d.Shard)
		}
		binary.BigEndian.PutUint16(b[p+3:], shard)
		binary.BigEndian.PutUint64(b[p+5:], math.Float64bits(d.PredInstr))
		p += keyedRespRow
	}
	return dst, nil
}

// DecodeTracedResponseFrame parses a v3 traced keyed response, reusing
// scratch, and returns the hop attribution alongside the decisions.
func DecodeTracedResponseFrame(payload []byte, scratch []Decision) ([]Decision, HopTimings, error) {
	var hops HopTimings
	if err := checkHeader(payload, Version3, MsgDecisionsTraced); err != nil {
		return nil, hops, err
	}
	if len(payload) < headerLen+1+tracedRespPrefix+2 {
		return nil, hops, fmt.Errorf("serve: traced response frame too short (%d bytes)", len(payload))
	}
	if payload[6] != StatusOK {
		return nil, hops, fmt.Errorf("serve: server reported error status %d", payload[6])
	}
	hops.QueueUs = binary.BigEndian.Uint32(payload[15:])
	hops.CoalesceUs = binary.BigEndian.Uint32(payload[19:])
	hops.DispatchUs = binary.BigEndian.Uint32(payload[23:])
	hops.InferUs = binary.BigEndian.Uint32(payload[27:])
	p := headerLen + 1 + tracedRespPrefix
	count := int(binary.BigEndian.Uint16(payload[p:]))
	want := headerLen + 1 + tracedRespPrefix + 2 + count*keyedRespRow
	if len(payload) != want {
		return nil, hops, fmt.Errorf("serve: traced response frame is %d bytes, want %d for %d rows", len(payload), want, count)
	}
	if cap(scratch) < count {
		scratch = make([]Decision, count)
	}
	scratch = scratch[:count]
	p += 2
	for i := range scratch {
		scratch[i].Level = int(payload[p])
		scratch[i].Reason = provenance.Reason(payload[p+1])
		scratch[i].Rerouted = payload[p+2]&decFlagRerouted != 0
		if s := binary.BigEndian.Uint16(payload[p+3:]); s == shardNone {
			scratch[i].Shard = -1
		} else {
			scratch[i].Shard = int(s)
		}
		scratch[i].PredInstr = math.Float64frombits(binary.BigEndian.Uint64(payload[p+5:]))
		p += keyedRespRow
	}
	return scratch, hops, nil
}

// TracedResponseTraceID peeks the echoed trace ID of a traced response
// payload without decoding the rows.
func TracedResponseTraceID(payload []byte) uint64 {
	if len(payload) < headerLen+1+tracedRespPrefix {
		return 0
	}
	return binary.BigEndian.Uint64(payload[7:])
}

// AppendHelloFrame appends a client hello offering the [min,max] version
// range.
func AppendHelloFrame(dst []byte, minVer, maxVer byte) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, headerLen+2)...)
	b := dst[off:]
	putHeader(b, VersionMax, MsgHello)
	b[6], b[7] = minVer, maxVer
	return dst
}

// DecodeHelloFrame parses a client hello into its offered version range.
func DecodeHelloFrame(payload []byte) (minVer, maxVer byte, err error) {
	if _, t, err := parseHeader(payload); err != nil {
		return 0, 0, err
	} else if t != MsgHello {
		return 0, 0, fmt.Errorf("serve: unexpected message type %d, want %d", t, MsgHello)
	}
	if len(payload) != headerLen+2 {
		return 0, 0, fmt.Errorf("serve: hello frame is %d bytes, want %d", len(payload), headerLen+2)
	}
	return payload[6], payload[7], nil
}

// AppendHelloAckFrame appends the server's negotiation answer. The body
// has grown twice, always by appending: byte 10 advertises the serving
// backend, bytes 11-14 the serving model's lineage generation. Peers
// that predate an extension parse only the prefix they know, so every
// body length remains compatible in both directions.
func AppendHelloAckFrame(dst []byte, h Hello) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, headerLen+9)...)
	b := dst[off:]
	putHeader(b, VersionMax, MsgHelloAck)
	b[6] = byte(h.Version)
	if h.Router {
		b[7] |= HelloFlagRouter
	}
	if h.Tracing {
		b[7] |= HelloFlagTracing
	}
	binary.BigEndian.PutUint16(b[8:], uint16(h.Shards))
	b[10] = backendCode(h.Backend)
	binary.BigEndian.PutUint32(b[11:], uint32(h.Generation))
	return dst
}

// DecodeHelloAckFrame parses a server hello-ack. A MsgError frame decodes
// into a *ProtoError, so a refused negotiation surfaces as a typed error.
func DecodeHelloAckFrame(payload []byte) (Hello, error) {
	_, t, err := parseHeader(payload)
	if err != nil {
		return Hello{}, err
	}
	if t == MsgError {
		return Hello{}, DecodeErrorFrame(payload)
	}
	if t != MsgHelloAck {
		return Hello{}, fmt.Errorf("serve: unexpected message type %d, want %d", t, MsgHelloAck)
	}
	// headerLen+4 is the legacy body (no backend byte), headerLen+5 adds
	// the backend advertisement, headerLen+9 the model generation. All
	// stay accepted so old and new peers interoperate in either direction.
	switch len(payload) {
	case headerLen + 4, headerLen + 5, headerLen + 9:
	default:
		return Hello{}, fmt.Errorf("serve: hello-ack frame is %d bytes, want %d, %d or %d",
			len(payload), headerLen+4, headerLen+5, headerLen+9)
	}
	h := Hello{
		Version: int(payload[6]),
		Router:  payload[7]&HelloFlagRouter != 0,
		Tracing: payload[7]&HelloFlagTracing != 0,
		Shards:  int(binary.BigEndian.Uint16(payload[8:])),
	}
	if len(payload) >= headerLen+5 {
		h.Backend = backendFromCode(payload[10])
	}
	if len(payload) == headerLen+9 {
		h.Generation = int(binary.BigEndian.Uint32(payload[11:]))
	}
	return h, nil
}

// AppendErrorFrame appends a structured protocol-error frame.
func AppendErrorFrame(dst []byte, code int, msg string) []byte {
	if len(msg) > 512 {
		msg = msg[:512]
	}
	off := len(dst)
	dst = append(dst, make([]byte, headerLen+4+len(msg))...)
	b := dst[off:]
	putHeader(b, VersionMax, MsgError)
	binary.BigEndian.PutUint16(b[6:], uint16(code))
	binary.BigEndian.PutUint16(b[8:], uint16(len(msg)))
	copy(b[10:], msg)
	return dst
}

// DecodeErrorFrame parses a MsgError payload into a *ProtoError.
func DecodeErrorFrame(payload []byte) error {
	if len(payload) < headerLen+4 {
		return fmt.Errorf("serve: error frame too short (%d bytes)", len(payload))
	}
	code := int(binary.BigEndian.Uint16(payload[6:]))
	n := int(binary.BigEndian.Uint16(payload[8:]))
	if headerLen+4+n > len(payload) {
		n = len(payload) - headerLen - 4
	}
	return &ProtoError{Code: code, Msg: string(payload[10 : 10+n])}
}

// ReadFrame and WriteFrame expose the raw frame transport for other
// packages that speak this protocol (the fleet router's front-end).
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) { return readFrame(r, buf) }

// WriteFrame writes one length-prefixed frame payload.
func WriteFrame(w io.Writer, payload []byte) error { return writeFrame(w, payload) }

// ParseHeader validates a payload's magic and version range and returns
// its version and message type — the dispatch step any transport speaking
// this protocol performs first. Errors are *ProtoError, ready to answer
// with AppendErrorFrame.
func ParseHeader(payload []byte) (version, msgType byte, err error) {
	return parseHeader(payload)
}

// WriteRequest encodes rows as one frame on w.
func WriteRequest(w *bufio.Writer, rows []Request) error {
	payload, err := AppendRequestFrame(nil, rows)
	if err != nil {
		return err
	}
	if err := writeFrame(w, payload); err != nil {
		return err
	}
	return w.Flush()
}

// ReadResponse reads one response frame from r.
func ReadResponse(r io.Reader) ([]Decision, error) {
	payload, err := readFrame(r, nil)
	if err != nil {
		return nil, err
	}
	return DecodeResponseFrame(payload, nil)
}
