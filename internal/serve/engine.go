package serve

import (
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ssmdvfs/internal/baselines"
	"ssmdvfs/internal/buildinfo"
	"ssmdvfs/internal/clockdomain"
	"ssmdvfs/internal/core"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/faults"
	"ssmdvfs/internal/infer"
	"ssmdvfs/internal/ledger"
	"ssmdvfs/internal/provenance"
	"ssmdvfs/internal/quant"
	"ssmdvfs/internal/telemetry"
)

// Options configures an Engine (and the Server wrapping it).
type Options struct {
	// ModelPath, when set, is the file Reload re-reads on SIGHUP or
	// POST /reload without an explicit path.
	ModelPath string
	// QuantBits, when non-zero, fake-quantizes every loaded model to the
	// given symmetric bit width (the INT-MAC deployment configuration).
	QuantBits int
	// Backend, when non-empty, overrides the inference backend for every
	// model this engine serves ("float64" or "int8"); empty defers to the
	// model artifact's own backend field (which defaults to float64). The
	// resolved backend is built and parity-validated before a model is
	// swapped in, like every other reload check.
	Backend string
	// Workers bounds concurrent inference batches across all transports;
	// 0 means GOMAXPROCS.
	Workers int
	// Logf receives progress messages; nil silences them.
	Logf func(format string, args ...any)
	// Table is the operating-point table the analytical fallback decides
	// over; nil means the TitanX table used throughout the project.
	Table *clockdomain.Table
	// Budget, when positive, bounds how long one batch may spend in the
	// model before the remaining rows degrade to the analytical fallback
	// (a deadline miss). Zero disables the budget.
	Budget time.Duration
	// Faults optionally injects deterministic faults at the Fault* sites.
	// Nil (the default) keeps the hot path allocation-free and fault-free.
	Faults *faults.Injector
	// Health tunes the degradation state machine.
	Health HealthOptions
}

// Engine is the transport-agnostic decision core: a hot-swappable model,
// the bounded worker pool, the degradation state machine, the analytical
// fallback, metrics, and optional decision provenance. Every transport —
// the v2 single-client frames, the v3 keyed batch frames a fleet router
// coalesces, and HTTP — feeds the same Engine, so single-row and batched
// traffic share one set of guarantees: DecideBatch never returns fewer
// decisions than rows and never panics.
type Engine struct {
	opts    Options
	model   atomic.Pointer[core.Model]
	metrics *Metrics
	sem     chan struct{}
	table   *clockdomain.Table
	health  *health
	faults  *faults.Injector

	// prev retains the model the last successful Swap replaced — the
	// incumbent snapshot Rollback restores without touching disk, so a
	// regressing canary can be reverted even if the artifact file has
	// since been overwritten or deleted.
	prev atomic.Pointer[core.Model]

	// shadow, when SetShadow installed one, receives every model-path
	// decision (provenance must be enabled). The single-pointer holder
	// makes install/remove atomic against in-flight batches.
	shadow atomic.Pointer[shadowHolder]

	// Prediction feedback (EnablePredFeedback): last model-path PredInstr
	// per (GPU, cluster) key, used to stamp the realized relative error of
	// the *previous* epoch's prediction into the next record.
	fbOn bool
	fbMu sync.Mutex
	fb   map[int64]float64

	// prov/mon, when EnableProvenance installed them, receive one record
	// per decision; both are nil-safe and nil by default, keeping the hot
	// path free of provenance work. recPool holds *provenance.Record
	// scratch so recording does not allocate per batch.
	prov    *provenance.Recorder
	mon     *provenance.Monitor
	recPool sync.Pool // *provenance.Record

	infPool sync.Pool // *core.Inference

	// tracer, when SetTracer installed one, receives engine-hop spans for
	// sampled traces. Nil tracers and unsampled requests cost nothing.
	tracer *telemetry.Tracer

	// led, when SetLedger installed one, accounts every answered decision
	// against the MaxFreq counterfactual. Nil (the default) keeps the hot
	// path ledger-free and allocation-free.
	led *ledger.Ledger

	mu sync.Mutex // serializes Reload
}

// NewEngine builds a decision engine around an initial model.
func NewEngine(m *core.Model, opts Options) (*Engine, error) {
	if m == nil {
		return nil, fmt.Errorf("serve: nil model")
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Table == nil {
		opts.Table = clockdomain.TitanX()
	}
	if _, err := infer.ParseKind(opts.Backend); err != nil {
		return nil, err
	}
	e := &Engine{
		opts:    opts,
		metrics: newMetrics(telemetry.NewRegistry()),
		sem:     make(chan struct{}, opts.Workers),
		table:   opts.Table,
		health:  newHealth(opts.Health),
		faults:  opts.Faults,
	}
	if err := e.applyBackend(m); err != nil {
		return nil, err
	}
	e.model.Store(m)
	e.infPool.New = func() any { return core.NewInference(m) }
	e.recPool.New = func() any { return new(provenance.Record) }
	return e, nil
}

// applyBackend resolves the backend a model will serve with — the
// engine's override when set, otherwise the model's own header — and
// builds + parity-validates it. Called before a model is published, so
// the decision path never discovers a bad backend mid-batch.
func (e *Engine) applyBackend(m *core.Model) error {
	if e.opts.Backend != "" {
		kind, err := infer.ParseKind(e.opts.Backend)
		if err != nil {
			return err
		}
		m.Backend = kind
	}
	return m.EnsureBackends()
}

// BackendKind returns the inference backend the current model serves
// with, advertised in hello negotiation and /healthz.
func (e *Engine) BackendKind() infer.Kind { return e.Model().BackendKind() }

// EnableProvenance installs a decision flight recorder of the given
// capacity (<= 0 means provenance.DefaultCapacity) and an online
// model-quality monitor registered on the engine's telemetry registry,
// seeded with the served model's training statistics. Must be called
// before the engine starts answering decisions.
func (e *Engine) EnableProvenance(capacity int, opts provenance.MonitorOptions) {
	if capacity <= 0 {
		capacity = provenance.DefaultCapacity
	}
	e.prov = provenance.NewRecorder(capacity)
	e.mon = provenance.NewMonitor(e.Telemetry(), opts)
	names, mean, std := e.Model().TrainingStats()
	e.mon.SetTrainingStats(names, mean, std)
}

// ShadowObserver receives a copy of every model-path decision the engine
// serves — the hook shadow-mode candidate scoring hangs off. The
// observer sees traffic only; its output never influences the served
// decision. Implementations must be fast and non-blocking (hand off to a
// channel or drop), since they run on the decision path.
type ShadowObserver interface {
	ObserveServed(row Request, d Decision)
}

// shadowHolder wraps the observer so installing/removing is one atomic
// pointer swap even though ShadowObserver is an interface value.
type shadowHolder struct{ obs ShadowObserver }

// SetShadow installs (or, with nil, removes) the shadow observer.
// Observation rides the provenance path, so EnableProvenance must be on
// for the observer to see traffic. Safe to call while serving.
func (e *Engine) SetShadow(obs ShadowObserver) {
	if obs == nil {
		e.shadow.Store(nil)
		return
	}
	e.shadow.Store(&shadowHolder{obs: obs})
}

// EnablePredFeedback turns on self-measured prediction error: the engine
// remembers the last model-path instruction prediction per (GPU,
// cluster) key and, when the same key's next epoch arrives, stamps the
// realized relative error (pred-actual)/pred into that record
// (HasPredErr). This is what feeds the quality monitor's rolling MAPE
// from live traffic alone — no offline labels — assuming each keyed
// client streams consecutive epochs, which the v3 fleet transport does.
// Unkeyed (v2/HTTP) rows carry no identity and are skipped. Must be
// called before the engine starts answering decisions.
func (e *Engine) EnablePredFeedback() {
	e.fbOn = true
	e.fb = make(map[int64]float64, 256)
}

// maxFeedbackKeys bounds the feedback map; a key churn beyond this (a
// fleet cycling through more identities than any real GPU population)
// resets the map rather than growing without bound.
const maxFeedbackKeys = 1 << 16

// predFeedback resolves the previous prediction for a keyed row and
// retires/installs the key's entry. It returns the previous model-path
// prediction for this key and whether one existed.
func (e *Engine) predFeedback(row Request, d Decision) (prev float64, ok bool) {
	key := int64(uint32(row.GPU))<<32 | int64(uint32(row.Cluster))
	e.fbMu.Lock()
	prev, ok = e.fb[key]
	if d.Reason == provenance.ReasonModel {
		if !ok && len(e.fb) >= maxFeedbackKeys {
			e.fb = make(map[int64]float64, 256)
		}
		e.fb[key] = d.PredInstr
	} else if ok {
		// A degraded epoch breaks the prediction chain: the next epoch's
		// counters follow a fallback decision, not a model prediction.
		delete(e.fb, key)
	}
	e.fbMu.Unlock()
	return prev, ok
}

// SetTracer installs a span tracer for the engine's decision hops
// (engine.batch / engine.inference / engine.fallback). Must be called
// before the engine starts answering decisions; a nil tracer (the
// default) keeps the hot path span-free.
func (e *Engine) SetTracer(tr *telemetry.Tracer) { e.tracer = tr }

// SetLedger installs the efficiency ledger: every answered decision is
// accounted for estimated energy delta and perf-loss versus the MaxFreq
// counterfactual. Must be called before the engine starts answering
// decisions; nil (the default) keeps the hot path ledger-free.
func (e *Engine) SetLedger(l *ledger.Ledger) { e.led = l }

// Ledger returns the efficiency ledger, or nil when none is installed.
func (e *Engine) Ledger() *ledger.Ledger { return e.led }

// Tracer returns the engine's span tracer, or nil.
func (e *Engine) Tracer() *telemetry.Tracer { return e.tracer }

// FlightRecorder returns the decision flight recorder, or nil when
// provenance is not enabled.
func (e *Engine) FlightRecorder() *provenance.Recorder { return e.prov }

// QualityMonitor returns the model-quality monitor, or nil when
// provenance is not enabled.
func (e *Engine) QualityMonitor() *provenance.Monitor { return e.mon }

// LoadModel reads a model file and, if quantBits > 0, fake-quantizes it —
// the loader behind both daemon startup and hot reload, accepting the
// plain and compressed artifacts interchangeably (they share one format).
// It validates the result (shapes and finite weights), so a corrupt or
// truncated artifact is rejected here instead of poisoning the serving
// path.
func LoadModel(path string, quantBits int) (*core.Model, error) {
	m, err := core.LoadFile(path)
	if err != nil {
		return nil, err
	}
	if quantBits > 0 {
		if m, err = quant.QuantizeModel(m, quantBits); err != nil {
			return nil, err
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("serve: model %s failed validation: %w", path, err)
	}
	return m, nil
}

// ReloadError is the structured error Reload returns when a new model
// cannot be swapped in; Stage says how far the reload got ("config",
// "load", "validate", "backend", "swap"). The previously served model
// always stays active.
type ReloadError struct {
	Path  string
	Stage string
	Err   error
}

func (e *ReloadError) Error() string {
	if e.Path == "" {
		return fmt.Sprintf("serve: reload failed at %s: %v", e.Stage, e.Err)
	}
	return fmt.Sprintf("serve: reload of %s failed at %s: %v", e.Path, e.Stage, e.Err)
}

func (e *ReloadError) Unwrap() error { return e.Err }

// Model returns the currently served model.
func (e *Engine) Model() *core.Model { return e.model.Load() }

// Metrics exposes the engine's counters.
func (e *Engine) Metrics() *Metrics { return e.metrics }

// Telemetry exposes the registry hosting the engine's metrics, for the
// Prometheus exposition and for daemons that add their own series.
func (e *Engine) Telemetry() *telemetry.Registry { return e.metrics.Registry() }

// Health returns the engine's current degradation state.
func (e *Engine) Health() HealthState { return e.health.State() }

// Swap atomically replaces the served model after validating it. A model
// that fails validation is rejected and the current model keeps serving.
// In-flight batches finish on the model they started with; new batches
// see the new one immediately. The outgoing model is retained in memory
// as the rollback snapshot (see Rollback). Serialized with Reload and
// Rollback.
func (e *Engine) Swap(m *core.Model) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.swapLocked(m)
}

func (e *Engine) swapLocked(m *core.Model) error {
	if m == nil {
		return fmt.Errorf("serve: nil model")
	}
	if m.Levels > maxLevels {
		return fmt.Errorf("serve: model has %d levels, metrics support %d", m.Levels, maxLevels)
	}
	if err := e.faults.Inject(FaultSwap); err != nil {
		return err
	}
	if err := m.Validate(); err != nil {
		return err
	}
	// Backend build + parity validation is part of the swap gate: an
	// artifact whose declared (or flag-forced) backend cannot be built —
	// all-zero layer, non-finite weights, quantization that flips too
	// many decisions — is rejected and the current model keeps serving.
	if err := e.applyBackend(m); err != nil {
		return err
	}
	e.prev.Store(e.model.Load())
	e.model.Store(m)
	e.metrics.Reloads.Add(1)
	if e.fbOn {
		// A swap breaks every prediction chain: pending predictions were
		// made by the outgoing model, and realizing them against epochs
		// decided by (and attributed to) the incoming model would charge
		// the new model with the old model's error — poisoning both the
		// drift monitor's reset windows and any canary judgement keyed on
		// the new generation.
		e.fbMu.Lock()
		e.fb = make(map[int64]float64, 256)
		e.fbMu.Unlock()
	}
	if e.mon != nil {
		// The drift reference follows the served model: the monitor's
		// windows reset so the new model is not judged against the old
		// model's training distribution.
		names, mean, std := m.TrainingStats()
		e.mon.SetTrainingStats(names, mean, std)
	}
	return nil
}

// PrevModel returns the retained pre-swap snapshot Rollback would
// restore, or nil when no swap has happened yet.
func (e *Engine) PrevModel() *core.Model { return e.prev.Load() }

// Generation returns the lineage generation of the currently served
// model (0 for an unversioned offline artifact) — what hello
// negotiation and /healthz advertise, and what provenance records stamp.
func (e *Engine) Generation() int { return e.Model().Lineage.Generation }

// Rollback restores the retained pre-swap snapshot — the canary escape
// hatch. It never touches disk: the snapshot was validated and its
// backend built when it originally served, so rollback cannot fail the
// way a reload can (corrupt file, missing artifact). The rolled-back
// model becomes the new retained snapshot, so a rollback is itself
// reversible. Returns the model now serving.
func (e *Engine) Rollback() (*core.Model, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	p := e.prev.Load()
	if p == nil {
		return nil, errors.New("serve: no retained model to roll back to")
	}
	cur := e.model.Load()
	e.model.Store(p)
	e.prev.Store(cur)
	e.metrics.Rollbacks.Add(1)
	if e.fbOn {
		// Same chain break as swapLocked: the regressing model's pending
		// predictions must not be charged to the restored incumbent.
		e.fbMu.Lock()
		e.fb = make(map[int64]float64, 256)
		e.fbMu.Unlock()
	}
	if e.mon != nil {
		names, mean, std := p.TrainingStats()
		e.mon.SetTrainingStats(names, mean, std)
	}
	e.opts.Logf("serve: rolled back to retained model %s", p.Lineage)
	return p, nil
}

// Reload loads path (or the configured ModelPath when path is empty) and
// swaps it in. Concurrent reloads are serialized; decisions never block.
// Any failure — unreadable file, corrupt or truncated artifact, bad
// shapes, non-finite weights — returns a *ReloadError and keeps the old
// model serving.
func (e *Engine) Reload(path string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if path == "" {
		path = e.opts.ModelPath
	}
	if path == "" {
		return &ReloadError{Stage: "config", Err: errors.New("no model path configured")}
	}
	if err := e.faults.Inject(FaultReload); err != nil {
		e.metrics.Errors.Add(1)
		return &ReloadError{Path: path, Stage: "load", Err: err}
	}
	m, err := LoadModel(path, e.opts.QuantBits)
	if err != nil {
		e.metrics.Errors.Add(1)
		return &ReloadError{Path: path, Stage: "load", Err: err}
	}
	if e.faults.Corrupt(FaultReload) {
		// Corruption fault: poison the candidate model so the swap-time
		// validation must reject it — the served model is never touched.
		m.Decision.Layers[0].W[0] = math.NaN()
	}
	if err := e.swapLocked(m); err != nil {
		e.metrics.Errors.Add(1)
		stage := "swap"
		var ie *infer.Error
		if errors.As(err, &ie) {
			stage = "backend"
		}
		return &ReloadError{Path: path, Stage: stage, Err: err}
	}
	e.opts.Logf("serve: reloaded model from %s (%d params, %d FLOPs)", path, m.Params(), m.FLOPs())
	return nil
}

// maxFeature and maxPreset bound what the row validators accept: counter
// values are per-10µs-epoch counts and watt-scale powers, presets are
// performance-loss fractions — anything beyond these magnitudes (or
// non-finite) is garbage that must not reach the model.
const (
	maxFeature = 1e15
	maxPreset  = 1e3
)

// finiteInRange rejects NaN and values outside ±limit (which also
// catches ±Inf) with two plain comparisons — NaN fails both, so no
// separate v == v test — cheap enough for the per-row hot path.
func finiteInRange(v, limit float64) bool {
	return v >= -limit && v <= limit
}

// validRow reports whether every feature and the preset are finite and
// within range. Invalid rows are rejected at the transport boundary and
// answered by the analytical fallback instead of the model.
func validRow(row Request) bool {
	if !finiteInRange(row.Preset, maxPreset) {
		return false
	}
	for _, f := range row.Features {
		if !finiteInRange(f, maxFeature) {
			return false
		}
	}
	return true
}

// fallbackRow answers one row from the PCSTALL analytical baseline — the
// guaranteed decision when the model cannot or must not be trusted.
// reason records why the model did not answer.
func (e *Engine) fallbackRow(row Request, reason provenance.Reason) Decision {
	level, pred := baselines.FallbackDecision(e.table, row.Features, row.Preset)
	e.metrics.Fallbacks.Add(1)
	e.metrics.ObserveLevel(level)
	return Decision{Level: level, Reason: reason, PredInstr: pred, Shard: -1}
}

// observe fills the scratch provenance record for one answered row and
// hands it to the recorder and monitor. rec is nil when provenance is
// disabled; derived and logits are non-nil only on the model path (they
// alias inference scratch and are copied into the record here).
func (e *Engine) observe(rec *provenance.Record, row Request, d Decision, derived, logits []float64, start time.Time) {
	if l := e.led; l != nil {
		// The ledger reads the generation the provenance record was stamped
		// with (the model this batch actually bound); without provenance it
		// attributes to whatever is serving now.
		var gen uint32
		if rec != nil {
			gen = rec.ModelGen
		} else {
			gen = uint32(e.Generation())
		}
		l.Observe(row.Cluster, gen, d.Level, row.Features, row.Preset)
	}
	if rec == nil {
		return
	}
	// v3 keyed rows carry the requesting cluster; v2 rows decode with -1
	// (not applicable). The serving transports carry no epoch identity.
	rec.Cluster = row.Cluster
	rec.Epoch = -1
	rec.Level = int32(d.Level)
	rec.Reason = d.Reason
	rec.Preset = row.Preset
	rec.EffPreset = row.Preset
	rec.PredInstr = d.PredInstr
	rec.PredErr, rec.HasPredErr = 0, false
	if e.fbOn && row.Cluster >= 0 && len(row.Features) > counters.IdxInstr {
		// The instruction counter of the just-finished epoch is the
		// realized value the previous epoch's prediction was about.
		if prev, ok := e.predFeedback(row, d); ok && prev > 0 {
			rec.PredErr = (prev - row.Features[counters.IdxInstr]) / prev
			rec.HasPredErr = true
		}
	}
	rec.LatencyNs = int64(time.Since(start))
	rec.SetRaw(row.Features)
	rec.SetDerived(derived)
	rec.SetLogits(logits)
	e.prov.Record(rec)
	e.mon.ObserveRecord(rec)
	if h := e.shadow.Load(); h != nil && d.Reason == provenance.ReasonModel {
		// Shadow scoring sees model-path traffic only: degraded rows carry
		// no model prediction to compare a candidate against. row.Features
		// aliases transport scratch — observers must copy what they keep.
		h.obs.ObserveServed(row, d)
	}
}

// DecideBatch answers every row, appending one Decision per row to decs —
// the exported entry point transports and in-process embedders share.
func (e *Engine) DecideBatch(rows []Request, decs []Decision) []Decision {
	return e.decideBatch(rows, decs)
}

// decideBatch is the untraced entry point (zero trace context).
func (e *Engine) decideBatch(rows []Request, decs []Decision) []Decision {
	return e.decideBatchTC(rows, decs, telemetry.TraceContext{})
}

// DecideBatchTraced is DecideBatch for a request carrying distributed-
// trace context: sampled traces get engine spans and their trace ID
// stamped into provenance records, and the returned microsecond count
// is the inference-hop attribution for the traced response frame. An
// unsampled (zero) context follows exactly the DecideBatch path.
func (e *Engine) DecideBatchTraced(rows []Request, decs []Decision, tc telemetry.TraceContext) ([]Decision, uint32) {
	start := time.Now()
	decs = e.decideBatchTC(rows, decs, tc)
	return decs, DurUs32(time.Since(start))
}

// decideBatchTC answers every row, appending one Decision per row to decs.
// It acquires a worker-pool slot, so at most Options.Workers batches run
// at once regardless of connection count. The contract is the degradation
// guarantee: decideBatch never returns fewer decisions than rows and
// never panics — rows the model cannot answer (invalid features,
// recovered panic, blown deadline budget, fallback-only health state)
// degrade to the analytical fallback instead.
func (e *Engine) decideBatchTC(rows []Request, decs []Decision, tc telemetry.TraceContext) []Decision {
	// Span (and provenance trace-ID stamping) only for sampled traces:
	// sp is nil otherwise and every sp call below is a no-op.
	sp := e.tracer.StartSpan(tc, "engine.batch")
	defer sp.End()

	e.sem <- struct{}{}
	defer func() { <-e.sem }()

	var rec *provenance.Record
	if e.prov != nil || e.mon != nil {
		rec = e.recPool.Get().(*provenance.Record)
		defer e.recPool.Put(rec)
		rec.TraceID = tc.TraceID
		// Stamped again after the model binds (modelRows), so fallback-only
		// batches still attribute to whatever is serving now.
		rec.ModelGen = uint32(e.Generation())
	}

	start := time.Now()
	done := 0
	// tailReason labels the rows the model never reached: the health state
	// machine bypassing it entirely, or the failure modelRows reports.
	tailReason := provenance.ReasonFallbackOnly
	if e.health.useModel() {
		isp := e.tracer.StartSpan(sp.Context(), "engine.inference")
		var failed bool
		decs, done, tailReason, failed = e.modelRows(rows, decs, start, rec)
		isp.End()
		if failed {
			e.health.recordFailure()
		} else {
			e.health.recordSuccess()
		}
	}
	if done < len(rows) {
		fsp := e.tracer.StartSpan(sp.Context(), "engine.fallback")
		for _, row := range rows[done:] {
			d := e.fallbackRow(row, tailReason)
			decs = append(decs, d)
			e.observe(rec, row, d, nil, nil, start)
		}
		fsp.End()
	}
	return decs
}

// inferChunk caps how many rows one backend ForwardBatch call takes:
// large enough to amortize the matmul over a full coalesced fleet batch,
// small enough that the budget deadline is still checked at a useful
// granularity on MaxBatch-sized frames.
const inferChunk = 64

// modelRows runs the model over rows until it finishes, fails, or blows
// the budget, returning how many rows were answered (model or per-row
// fallback), the reason the unreached rows should carry, and whether the
// model path failed. A panic anywhere in the model is recovered and
// reported as a failure; the rows it did not reach are the caller's to
// degrade.
//
// Valid rows are gathered into runs and answered by one batched backend
// inference per run — this is where a coalesced multi-row fleet frame
// actually amortizes matmul cost instead of unrolling row by row. The
// per-row semantics are unchanged: the budget is checked and FaultInfer
// injected once per row before its inference (a fault or deadline at row
// j still answers the gathered rows before j through the model), invalid
// rows degrade individually, and a lone valid row takes the single-row
// kernel.
func (e *Engine) modelRows(rows []Request, decs []Decision, start time.Time, rec *provenance.Record) (out []Decision, done int, failReason provenance.Reason, failed bool) {
	out = decs
	failReason = provenance.ReasonFallback
	// On panic the named returns already hold the last consistent state:
	// out has exactly the decisions of the done rows, because append and
	// the done update are adjacent non-panicking statements.
	defer func() {
		if r := recover(); r != nil {
			e.metrics.RecoveredPanics.Add(1)
			failReason = provenance.ReasonPanic
			failed = true
		}
	}()
	if err := e.faults.Inject(FaultDecide); err != nil {
		return out, 0, provenance.ReasonFallback, true
	}
	inf := e.infPool.Get().(*core.Inference)
	defer e.infPool.Put(inf)
	inf.Bind(e.model.Load())
	if rec != nil {
		// Attribution follows the model this batch actually bound, which a
		// concurrent swap could have already replaced as the serving one.
		rec.ModelGen = uint32(inf.Model().Lineage.Generation)
	}
	kind := inf.Backend()
	nFeat := inf.Model().NumFeatures()
	budget := e.opts.Budget
	i := 0
	for i < len(rows) {
		if budget > 0 && time.Since(start) > budget {
			e.metrics.DeadlineMisses.Add(1)
			return out, i, provenance.ReasonDeadline, true
		}
		if !validRow(rows[i]) {
			e.metrics.RejectedRows.Add(1)
			d := e.fallbackRow(rows[i], provenance.ReasonRejected)
			out = append(out, d)
			done = i + 1
			e.observe(rec, rows[i], d, nil, nil, start)
			i++
			continue
		}
		// Gather the maximal run of valid rows starting at i, spending
		// each row's budget check and FaultInfer injection as it joins —
		// exactly what the row-at-a-time loop did before its inference.
		j := i
		var stop provenance.Reason
		for j < len(rows) && j-i < inferChunk {
			if j > i { // row i was validated above
				if budget > 0 && time.Since(start) > budget {
					stop = provenance.ReasonDeadline
					break
				}
				if !validRow(rows[j]) {
					break
				}
			}
			if err := e.faults.Inject(FaultInfer); err != nil {
				stop = provenance.ReasonFallback
				break
			}
			j++
		}
		if n := j - i; n == 1 {
			level, pred := inf.Decide(rows[i].Features, rows[i].Preset)
			e.metrics.ObserveInfer(kind, 1)
			e.metrics.ObserveLevel(level)
			d := Decision{Level: level, Reason: provenance.ReasonModel, PredInstr: pred, Shard: -1}
			out = append(out, d)
			done = i + 1
			e.observe(rec, rows[i], d, inf.DecisionRow()[:nFeat], inf.Logits(), start)
		} else if n > 1 {
			inf.BeginBatch(n)
			for k := 0; k < n; k++ {
				inf.SetBatchRow(k, rows[i+k].Features, rows[i+k].Preset)
			}
			inf.DecideBatch()
			e.metrics.ObserveInfer(kind, n)
			for k := 0; k < n; k++ {
				level := inf.BatchLevel(k)
				e.metrics.ObserveLevel(level)
				d := Decision{Level: level, Reason: provenance.ReasonModel, PredInstr: inf.BatchPredInstr(k), Shard: -1}
				out = append(out, d)
				done = i + k + 1
				e.observe(rec, rows[i+k], d, inf.BatchDerived(k)[:nFeat], inf.BatchLogits(k), start)
			}
		}
		i = j
		if stop != provenance.ReasonModel { // zero value: gather ran dry, no stop
			if stop == provenance.ReasonDeadline {
				e.metrics.DeadlineMisses.Add(1)
			}
			return out, i, stop, true
		}
	}
	return out, done, provenance.ReasonModel, false
}

// provHeader builds the dump header attributing recorder contents to
// this binary and the currently served model.
func (e *Engine) provHeader() provenance.Header {
	m := e.Model()
	names, mean, std := m.TrainingStats()
	return provenance.Header{
		Build:       buildinfo.Info(),
		Features:    names,
		TrainMean:   mean,
		TrainStd:    std,
		Levels:      m.Levels,
		ModelParams: m.Params(),
		Capacity:    e.prov.Cap(),
		Head:        e.prov.Head(),
	}
}

// DumpDecisions writes the flight recorder's current contents as a JSONL
// dump (header + one record per line) — the format cmd/dvfsstat's
// -decisions view reads. It returns false when provenance is disabled.
func (e *Engine) DumpDecisions(w io.Writer) (bool, error) {
	if e.prov == nil {
		return false, nil
	}
	return true, provenance.WriteRecords(w, e.provHeader(), e.prov.Snapshot(nil))
}
