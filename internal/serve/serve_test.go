package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"ssmdvfs/internal/core"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/nn"
)

// testModel builds a small untrained (but deterministic) model: serving
// correctness is about transport and concurrency, not accuracy.
func testModel(tb testing.TB, seed int64) *core.Model {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	dec, err := nn.NewMLP([]int{6, 16, 6}, rng)
	if err != nil {
		tb.Fatal(err)
	}
	cal, err := nn.NewMLP([]int{7, 16, 1}, rng)
	if err != nil {
		tb.Fatal(err)
	}
	identity := func(n int) *counters.Scaler {
		s := &counters.Scaler{Mean: make([]float64, n), Std: make([]float64, n)}
		for i := range s.Std {
			s.Std[i] = 1
		}
		return s
	}
	return &core.Model{
		FeatureIdx:     counters.SelectedFive(),
		Levels:         6,
		Decision:       dec,
		Calibrator:     cal,
		DecisionScaler: identity(6),
		CalibScaler:    identity(7),
		TargetScale:    1000,
		PresetSamples:  1,
	}
}

func featureRow(rng *rand.Rand) []float64 {
	row := make([]float64, counters.Num)
	for j := range row {
		row[j] = rng.Float64() * 2
	}
	return row
}

// TestServeTCPEndToEnd runs concurrent binary-protocol clients against a
// live server while the model is hot-swapped mid-load: every request must
// succeed and the metrics must account for all of them.
func TestServeTCPEndToEnd(t *testing.T) {
	m := testModel(t, 1)
	srv, err := NewServer(m, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.ServeTCP(l) }()

	// A second model on disk for the mid-load swap.
	swapPath := filepath.Join(t.TempDir(), "model.json")
	if err := testModel(t, 2).SaveFile(swapPath); err != nil {
		t.Fatal(err)
	}
	srv.opts.ModelPath = swapPath

	const (
		clients = 8
		batches = 40
		rowsPer = 4
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(l.Addr().String())
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(c)))
			rows := make([]Request, rowsPer)
			for b := 0; b < batches; b++ {
				for i := range rows {
					rows[i] = Request{Preset: 0.1, Features: featureRow(rng)}
				}
				decs, err := cl.Decide(rows)
				if err != nil {
					t.Errorf("client %d batch %d: %v", c, b, err)
					return
				}
				if len(decs) != rowsPer {
					t.Errorf("client %d: got %d decisions, want %d", c, len(decs), rowsPer)
					return
				}
				for _, d := range decs {
					if d.Level < 0 || d.Level >= m.Levels {
						t.Errorf("client %d: level %d out of range", c, d.Level)
						return
					}
				}
				// Swap the model from one client mid-way through the load.
				if c == 0 && b == batches/2 {
					if err := srv.Reload(""); err != nil {
						t.Errorf("reload: %v", err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()

	snap := srv.Metrics().Snapshot(m.Levels)
	wantDecisions := int64(clients * batches * rowsPer)
	if snap.Decisions != wantDecisions {
		t.Fatalf("decisions = %d, want %d", snap.Decisions, wantDecisions)
	}
	if snap.Errors != 0 {
		t.Fatalf("errors = %d, want 0 (hot swap must not fail requests)", snap.Errors)
	}
	if snap.Reloads != 1 {
		t.Fatalf("reloads = %d, want 1", snap.Reloads)
	}
	var levelTotal int64
	for _, c := range snap.LevelCounts {
		levelTotal += c
	}
	if levelTotal != wantDecisions {
		t.Fatalf("level counts sum to %d, want %d", levelTotal, wantDecisions)
	}
	if snap.LatencyP50Us <= 0 || snap.LatencyP99Us < snap.LatencyP50Us {
		t.Fatalf("latency percentiles implausible: p50=%g p99=%g", snap.LatencyP50Us, snap.LatencyP99Us)
	}

	srv.Close()
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}
}

// TestServeConnMalformedFrame checks that a protocol violation is
// answered with an error frame, counted, and the connection dropped.
func TestServeConnMalformedFrame(t *testing.T) {
	srv, err := NewServer(testModel(t, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	client, server := net.Pipe()
	go srv.ServeConn(server)
	defer client.Close()

	// A frame with valid length but garbage payload.
	payload := []byte("this is not a request")
	var buf bytes.Buffer
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadResponse(client); err == nil {
		t.Fatal("malformed frame got a success response")
	}
	if got := srv.Metrics().Errors.Load(); got == 0 {
		t.Fatal("protocol error not counted")
	}
}

func TestHTTPAPI(t *testing.T) {
	m := testModel(t, 4)
	srv, err := NewServer(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(9))
	post := func(path string, body any) *http.Response {
		t.Helper()
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", &buf)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Single decision.
	resp := post("/decide", map[string]any{"features": featureRow(rng), "preset": 0.1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/decide status %d", resp.StatusCode)
	}
	var single httpDecision
	if err := json.NewDecoder(resp.Body).Decode(&single); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if single.Level < 0 || single.Level >= m.Levels {
		t.Fatalf("level %d out of range", single.Level)
	}

	// Batch decision.
	rows := []map[string]any{
		{"features": featureRow(rng), "preset": 0.1},
		{"features": featureRow(rng), "preset": 0.2},
	}
	resp = post("/decide", map[string]any{"rows": rows})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/decide batch status %d", resp.StatusCode)
	}
	var batch struct {
		Rows []httpDecision `json:"rows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(batch.Rows) != 2 {
		t.Fatalf("batch returned %d rows", len(batch.Rows))
	}

	// Wrong feature dimension is a 400.
	resp = post("/decide", map[string]any{"features": []float64{1, 2, 3}, "preset": 0.1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad dimension status %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Reload from an explicit path.
	path := filepath.Join(t.TempDir(), "m.json")
	if err := testModel(t, 5).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	resp = post("/reload", map[string]any{"path": path})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/reload status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Reload with no path configured fails without killing the server.
	resp = post("/reload", map[string]any{})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("/reload without path status %d, want 500", resp.StatusCode)
	}
	resp.Body.Close()

	// Metrics reflect the traffic.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if snap.Decisions != 3 {
		t.Fatalf("metrics decisions = %d, want 3", snap.Decisions)
	}
	if snap.Reloads != 1 {
		t.Fatalf("metrics reloads = %d, want 1", snap.Reloads)
	}
	if snap.Errors == 0 {
		t.Fatal("bad-dimension request not counted as error")
	}
	if len(snap.LevelCounts) != m.Levels {
		t.Fatalf("level counts length %d, want %d", len(snap.LevelCounts), m.Levels)
	}

	// Model info.
	iresp, err := http.Get(ts.URL + "/model")
	if err != nil {
		t.Fatal(err)
	}
	var info struct {
		Levels int `json:"levels"`
		Params int `json:"params"`
	}
	if err := json.NewDecoder(iresp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	iresp.Body.Close()
	if info.Levels != m.Levels || info.Params == 0 {
		t.Fatalf("model info = %+v", info)
	}

	// Health.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d", hresp.StatusCode)
	}
}

// TestServedDecisionsMatchDirectModel pins the serving path to the plain
// in-process inference: same features, same model, same answers.
func TestServedDecisionsMatchDirectModel(t *testing.T) {
	m := testModel(t, 6)
	srv, err := NewServer(m, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	client, server := net.Pipe()
	go srv.ServeConn(server)
	defer client.Close()

	cl := NewClient(client)
	rng := rand.New(rand.NewSource(11))
	rows := make([]Request, 32)
	for i := range rows {
		rows[i] = Request{Preset: 0.15, Features: featureRow(rng)}
	}
	decs, err := cl.Decide(rows)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range rows {
		wantLevel := m.DecideLevel(row.Features, row.Preset)
		wantPred := m.PredictInstructions(row.Features, row.Preset, wantLevel)
		if decs[i].Level != wantLevel {
			t.Fatalf("row %d: served level %d, direct %d", i, decs[i].Level, wantLevel)
		}
		if diff := decs[i].PredInstr - wantPred; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("row %d: served prediction %g, direct %g", i, decs[i].PredInstr, wantPred)
		}
	}
}

func TestLoadModelQuantized(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.json")
	if err := testModel(t, 7).SaveFile(path); err != nil {
		t.Fatal(err)
	}
	plain, err := LoadModel(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	q, err := LoadModel(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Params() != q.Params() {
		t.Fatal("quantization changed parameter count")
	}
	if _, err := LoadModel(path, 1); err == nil {
		t.Fatal("bits=1 accepted")
	}
	if _, err := LoadModel(filepath.Join(t.TempDir(), "missing.json"), 0); err == nil {
		t.Fatal("missing file accepted")
	}
}
