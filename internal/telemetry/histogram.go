package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// DefaultHistBuckets is the bucket count used when none is specified:
// bucket 31 opens at 2^30, enough for any microsecond- or cycle-valued
// observation this project makes.
const DefaultHistBuckets = 32

// Histogram is a fixed-size log-2 histogram: bucket i counts observations
// v with 2^(i-1) <= v < 2^i (bucket 0 counts v < 1), and the last bucket
// absorbs the overflow tail. Observe is a pair of atomic adds —
// allocation-free and safe for concurrent use.
type Histogram struct {
	buckets   []atomic.Int64
	count     atomic.Int64
	sum       atomic.Int64
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar links a histogram bucket to one concrete observation that
// landed in it — the trace ID of a sampled decision plus its value —
// so a p999 bucket points straight at a flight-recorder entry instead
// of an anonymous count. Last write wins per bucket.
type Exemplar struct {
	TraceID string `json:"trace_id"`
	Value   int64  `json:"value"`
}

// NewHistogram returns a histogram with n buckets (minimum 2).
func NewHistogram(n int) *Histogram {
	if n < 2 {
		n = 2
	}
	return &Histogram{
		buckets:   make([]atomic.Int64, n),
		exemplars: make([]atomic.Pointer[Exemplar], n),
	}
}

// BucketIndex returns the bucket an observation falls in for a histogram
// with n buckets.
func BucketIndex(v int64, n int) int {
	if v <= 0 {
		return 0
	}
	// bits.Len64 is floor(log2(v))+1, exactly the [2^(i-1), 2^i) bucket.
	b := bits.Len64(uint64(v))
	if b >= n {
		return n - 1
	}
	return b
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	h.buckets[BucketIndex(v, len(h.buckets))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveExemplar records one observation and, when traceID is nonzero,
// pins it as the bucket's exemplar. The traceID==0 path is exactly
// Observe — unsampled requests pay nothing extra.
func (h *Histogram) ObserveExemplar(v int64, traceID uint64) {
	i := BucketIndex(v, len(h.buckets))
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if traceID != 0 {
		h.exemplars[i].Store(&Exemplar{TraceID: FormatTraceID(traceID), Value: v})
	}
}

// Exemplars copies the current per-bucket exemplars (nil when no bucket
// has one; entries are nil for exemplar-less buckets).
func (h *Histogram) Exemplars() []*Exemplar {
	var out []*Exemplar
	for i := range h.exemplars {
		if e := h.exemplars[i].Load(); e != nil {
			if out == nil {
				out = make([]*Exemplar, len(h.exemplars))
			}
			out[i] = e
		}
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Buckets copies the current bucket counts.
func (h *Histogram) Buckets() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0..1) of the observed distribution.
func (h *Histogram) Quantile(q float64) float64 {
	return Quantile(h.Buckets(), q)
}

// Snapshot captures the histogram with precomputed common quantiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	b := h.Buckets()
	return HistogramSnapshot{
		Buckets:   b,
		Count:     h.count.Load(),
		Sum:       h.sum.Load(),
		P50:       Quantile(b, 0.50),
		P95:       Quantile(b, 0.95),
		P99:       Quantile(b, 0.99),
		Exemplars: h.Exemplars(),
	}
}

// BucketBounds returns bucket i's value range [lo, hi).
func BucketBounds(i int) (lo, hi float64) {
	if i <= 0 {
		return 0, 1
	}
	return math.Pow(2, float64(i-1)), math.Pow(2, float64(i))
}

// Quantile estimates a quantile from log-2 bucket counts by linear
// interpolation within the winning bucket. The defined edge semantics —
// pinned by TestQuantileEdgeSemantics so JSON and Prometheus output can
// never carry NaN:
//
//   - an empty histogram yields 0 for every q (no observations, no
//     estimate);
//   - q is clamped to [0, 1], and a NaN q reads as 0;
//   - estimates past the last bucket saturate at that bucket's upper
//     bound (log-2 histograms cannot resolve the overflow tail).
func Quantile(buckets []int64, q float64) float64 {
	if math.IsNaN(q) || q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	var total int64
	for _, c := range buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		if cum+float64(c) >= target {
			frac := (target - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += float64(c)
	}
	_, hi := BucketBounds(len(buckets) - 1)
	return hi
}

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
