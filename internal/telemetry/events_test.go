package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestEventLogRetainsOrderAndWraps(t *testing.T) {
	l := NewEventLog(4, nil)
	for i := 0; i < 6; i++ {
		l.Append(Event{Kind: fmt.Sprintf("k%d", i), Time: time.Unix(int64(i), 0)})
	}
	if l.Total() != 6 {
		t.Fatalf("total = %d, want 6", l.Total())
	}
	evs := l.Snapshot(nil)
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := fmt.Sprintf("k%d", i+2); ev.Kind != want {
			t.Fatalf("event %d kind = %s, want %s (oldest-first after wrap)", i, ev.Kind, want)
		}
	}
}

func TestEventLogStampsTimeAndCounts(t *testing.T) {
	reg := NewRegistry()
	l := NewEventLog(0, reg)
	before := time.Now()
	l.Append(Event{Kind: "promote", Reason: "beat incumbent", Detail: map[string]any{"gen": 2}})
	evs := l.Snapshot(nil)
	if len(evs) != 1 || evs[0].Time.Before(before) {
		t.Fatalf("events = %+v", evs)
	}
	if n := reg.Snapshot().Counters["events_total"]; n != 1 {
		t.Fatalf("events_total = %d, want 1", n)
	}
}

func TestEventLogWriteJSON(t *testing.T) {
	l := NewEventLog(8, nil)
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var empty []Event
	if err := json.Unmarshal(buf.Bytes(), &empty); err != nil || len(empty) != 0 {
		t.Fatalf("empty log JSON = %q (err %v)", buf.String(), err)
	}

	l.Append(Event{Kind: "rollback", Reason: "live MAPE regressed", Detail: map[string]any{"gen": float64(3)}})
	buf.Reset()
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got []Event
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Kind != "rollback" || got[0].Detail["gen"] != float64(3) {
		t.Fatalf("round-trip = %+v", got)
	}
}

func TestEventLogConcurrentAndNil(t *testing.T) {
	var nilLog *EventLog
	nilLog.Append(Event{Kind: "x"})
	if nilLog.Total() != 0 || nilLog.Snapshot(nil) != nil {
		t.Fatal("nil log not a no-op")
	}

	l := NewEventLog(64, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Append(Event{Kind: "tick"})
				l.Snapshot(nil)
			}
		}(w)
	}
	wg.Wait()
	if l.Total() != 800 {
		t.Fatalf("total = %d, want 800", l.Total())
	}
}
