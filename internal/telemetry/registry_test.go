package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestRegistryReturnsStableHandles(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter handle not stable")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("gauge handle not stable")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("histogram handle not stable")
	}
	// Label order must not matter.
	if r.Counter("c", "a", "1", "b", "2") != r.Counter("c", "b", "2", "a", "1") {
		t.Fatal("label order changed metric identity")
	}
	// Different labels are different metrics.
	if r.Counter("c", "a", "1") == r.Counter("c", "a", "2") {
		t.Fatal("distinct labels collided")
	}
}

func TestMetricIDAndParseRoundTrip(t *testing.T) {
	id := MetricID("sim_level_residency_ps", "level", "3", "cluster", "0")
	want := `sim_level_residency_ps{cluster="0",level="3"}`
	if id != want {
		t.Fatalf("MetricID = %q, want %q", id, want)
	}
	name, labels := ParseID(id)
	if name != "sim_level_residency_ps" {
		t.Fatalf("ParseID name = %q", name)
	}
	if labels["level"] != "3" || labels["cluster"] != "0" {
		t.Fatalf("ParseID labels = %v", labels)
	}
	if name, labels := ParseID("plain"); name != "plain" || labels != nil {
		t.Fatalf("ParseID(plain) = %q, %v", name, labels)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_total").Add(7)
	r.Counter("by_level", "level", "2").Add(3)
	r.Gauge("power_w").Set(42.5)
	h := r.HistogramBuckets("latency_us", 20)
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["events_total"] != 7 {
		t.Fatalf("events_total = %d", snap.Counters["events_total"])
	}
	if snap.Counters[`by_level{level="2"}`] != 3 {
		t.Fatalf("labelled counter = %d", snap.Counters[`by_level{level="2"}`])
	}
	if snap.Gauges["power_w"] != 42.5 {
		t.Fatalf("gauge = %g", snap.Gauges["power_w"])
	}
	hs, ok := snap.Histograms["latency_us"]
	if !ok || hs.Count != 5 || hs.Sum != 1106 || len(hs.Buckets) != 20 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
	if hs.P50 <= 0 || hs.P99 < hs.P50 {
		t.Fatalf("quantiles implausible: %+v", hs)
	}
}

func TestWritePromExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("decisions_total").Add(10)
	r.Gauge("open_conns").Set(2)
	h := r.HistogramBuckets("latency_us", 4)
	h.Observe(1)   // bucket 1
	h.Observe(3)   // bucket 2
	h.Observe(900) // overflow → bucket 3

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE decisions_total counter",
		"decisions_total 10",
		"# TYPE open_conns gauge",
		"open_conns 2",
		"# TYPE latency_us histogram",
		`latency_us_bucket{le="1"} 0`,
		`latency_us_bucket{le="2"} 1`,
		`latency_us_bucket{le="4"} 2`,
		`latency_us_bucket{le="+Inf"} 3`,
		"latency_us_sum 904",
		"latency_us_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c").Add(1)
				r.Gauge("g").Add(1)
				r.Histogram("h", "worker", "0").Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Load(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Gauge("g").Value(); got != 8000 {
		t.Fatalf("gauge = %g, want 8000", got)
	}
	if got := r.Histogram("h", "worker", "0").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		g.Add(0.5)
		h.Observe(17)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates %.1f times per op, want 0", allocs)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(DefaultHistBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 0xffff))
	}
}
