package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSamplerDeterministicAndHeadBased(t *testing.T) {
	a := NewSampler(4, 42)
	b := NewSampler(4, 42)
	var sampled int
	for i := 0; i < 16; i++ {
		ca, cb := a.Next(), b.Next()
		if ca != cb {
			t.Fatalf("request %d: samplers diverged: %+v vs %+v", i, ca, cb)
		}
		if ca.Valid() != ca.Sampled() {
			t.Fatalf("request %d: root context must be sampled iff valid: %+v", i, ca)
		}
		if ca.Sampled() {
			sampled++
			if ca.SpanID != 0 {
				t.Fatalf("root context has parent span %x", ca.SpanID)
			}
		}
	}
	if sampled != 4 {
		t.Fatalf("sampled %d of 16 with everyN=4", sampled)
	}
	other := NewSampler(4, 43).Next()
	first := NewSampler(4, 42).Next()
	if other.TraceID == first.TraceID {
		t.Fatal("different seeds produced the same trace ID")
	}
}

func TestSamplerNilAndDisabled(t *testing.T) {
	if s := NewSampler(0, 1); s != nil {
		t.Fatal("everyN=0 should disable sampling")
	}
	var s *Sampler
	if tc := s.Next(); tc.Valid() || tc.Sampled() {
		t.Fatalf("nil sampler produced %+v", tc)
	}
}

func TestTraceIDFormatRoundTrip(t *testing.T) {
	for _, id := range []uint64{1, 0xdeadbeef, ^uint64(0)} {
		s := FormatTraceID(id)
		if len(s) != 16 {
			t.Fatalf("FormatTraceID(%x) = %q, want 16 hex chars", id, s)
		}
		back, err := ParseTraceID(s)
		if err != nil || back != id {
			t.Fatalf("round trip %x → %q → %x, err %v", id, s, back, err)
		}
	}
	if _, err := ParseTraceID("not-hex"); err == nil {
		t.Fatal("ParseTraceID accepted garbage")
	}
}

func TestSpanLinkingAcrossTracers(t *testing.T) {
	// Two tracers stand in for two processes of one serving stack: the
	// root span is started on tracer A, its Context crosses the "wire",
	// and the child span lands on tracer B with the same trace ID and
	// the root as parent.
	var bufA, bufB bytes.Buffer
	trA, trB := NewTracer(&bufA), NewTracer(&bufB)
	trA.SetClock(fakeClock(time.Millisecond))
	trB.SetClock(fakeClock(time.Millisecond))

	tc := NewSampler(1, 7).Next()
	root := trA.StartSpan(tc, "client.send")
	child := trB.StartSpan(root.Context(), "engine.decode")
	child.End()
	root.End()
	trA.Flush()
	trB.Flush()

	rootRec := mustReadOneSpan(t, &bufA)
	childRec := mustReadOneSpan(t, &bufB)
	want := FormatTraceID(tc.TraceID)
	if rootRec.TraceID != want || childRec.TraceID != want {
		t.Fatalf("trace IDs: root %q child %q want %q", rootRec.TraceID, childRec.TraceID, want)
	}
	if rootRec.SpanID == "" || childRec.SpanID == "" || rootRec.SpanID == childRec.SpanID {
		t.Fatalf("span IDs: root %q child %q", rootRec.SpanID, childRec.SpanID)
	}
	if childRec.ParentID != rootRec.SpanID {
		t.Fatalf("child parent %q, want root span %q", childRec.ParentID, rootRec.SpanID)
	}
	if rootRec.ParentID != "" {
		t.Fatalf("root has parent %q", rootRec.ParentID)
	}
}

func mustReadOneSpan(t *testing.T, buf *bytes.Buffer) SpanRecord {
	t.Helper()
	spans, err := ReadSpans(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	return spans[0]
}

func TestUnsampledStartSpanIsNil(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	if sp := tr.StartSpan(TraceContext{}, "x"); sp != nil {
		t.Fatal("unsampled context produced a live span")
	}
	unsampled := TraceContext{TraceID: 9} // valid but not sampled
	if sp := tr.StartSpan(unsampled, "x"); sp != nil {
		t.Fatal("sampled-bit-clear context produced a live span")
	}
	tr.Flush()
	if buf.Len() != 0 {
		t.Fatalf("unsampled spans wrote %q", buf.String())
	}
}

func TestStartAtEndAtRetrospective(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	base := time.Unix(0, 0)
	tr.SetClock(func() time.Time { return base })

	sp := tr.StartAt("router.queue", base.Add(10*time.Microsecond))
	sp.EndAt(base.Add(35 * time.Microsecond))
	tr.Flush()

	rec := mustReadOneSpan(t, &buf)
	if rec.StartUs != 10 || rec.DurUs != 25 {
		t.Fatalf("retrospective span = start %g dur %g, want 10/25", rec.StartUs, rec.DurUs)
	}
}

func TestChromeTraceMultiAssignsDistinctPIDs(t *testing.T) {
	groups := [][]SpanRecord{
		{{Name: "router.dispatch", StartUs: 1, DurUs: 2, TraceID: "00000000000000aa", SpanID: "00000000000000bb"}},
		{{Name: "engine.inference", StartUs: 2, DurUs: 1}},
	}
	var buf bytes.Buffer
	if err := WriteChromeTraceMulti(&buf, groups, []string{"router.spans.jsonl", "replica1.spans.jsonl"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"name": "process_name"`, `"router.spans.jsonl"`, `"replica1.spans.jsonl"`,
		`"pid": 1`, `"pid": 2`, `"trace_id": "00000000000000aa"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("merged chrome trace missing %s:\n%s", want, out)
		}
	}
	// Round trip: X events come back with trace IDs restored to fields.
	back, err := ReadChromeTrace(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("round trip returned %d spans, want 2", len(back))
	}
	if back[0].TraceID != "00000000000000aa" || back[0].SpanID != "00000000000000bb" {
		t.Fatalf("trace linkage lost in round trip: %+v", back[0])
	}
	if len(back[0].Attrs) != 0 {
		t.Fatalf("linkage IDs leaked into attrs: %v", back[0].Attrs)
	}
}

// TestTracerConcurrentUse exercises Start/StartSpan/SetAttr/End from many
// goroutines under -race: the JSONL output must stay well-formed and
// complete.
func TestTracerConcurrentUse(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	sampler := NewSampler(2, 99)

	const goroutines = 16
	const perG = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				var sp *Span
				if tc := sampler.Next(); tc.Sampled() {
					sp = tr.StartSpan(tc, "traced")
				} else {
					sp = tr.Start("plain")
				}
				sp.SetAttr("g", fmt.Sprint(g))
				sp.SetAttr("i", fmt.Sprint(i))
				sp.SetTID(g)
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	spans, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != goroutines*perG {
		t.Fatalf("got %d spans, want %d", len(spans), goroutines*perG)
	}
	ids := make(map[string]bool)
	for _, sp := range spans {
		if sp.Name == "traced" {
			if sp.TraceID == "" || sp.SpanID == "" {
				t.Fatalf("traced span missing linkage: %+v", sp)
			}
			if ids[sp.SpanID] {
				t.Fatalf("span ID %s minted twice", sp.SpanID)
			}
			ids[sp.SpanID] = true
		}
	}
}

// TestDisabledTracingAllocatesNothing pins the zero-alloc guarantee for
// the tracing-disabled hot path: nil tracers, unsampled contexts, and
// unsampled sampler draws must not allocate.
func TestDisabledTracingAllocatesNothing(t *testing.T) {
	var nilTr *Tracer
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	sampler := NewSampler(1<<30, 1) // first draw sampled; burn it.
	sampler.Next()

	cases := []struct {
		name string
		fn   func()
	}{
		{"nil tracer Start/End", func() {
			sp := nilTr.Start("x")
			sp.SetAttr("k", "v")
			sp.End()
		}},
		{"unsampled StartSpan", func() {
			sp := tr.StartSpan(TraceContext{}, "x")
			sp.SetAttr("k", "v")
			sp.End()
		}},
		{"nil sampler Next", func() {
			var s *Sampler
			_ = s.Next()
		}},
		{"unsampled sampler Next", func() {
			_ = sampler.Next()
		}},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(200, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

func TestHistogramExemplars(t *testing.T) {
	h := NewHistogram(8)
	h.ObserveExemplar(3, 0) // unsampled: no exemplar
	if ex := h.Exemplars(); ex != nil {
		t.Fatalf("unsampled observation left exemplars %v", ex)
	}
	h.ObserveExemplar(3, 0xabc)
	h.ObserveExemplar(200, 0xdef)
	ex := h.Exemplars()
	if ex == nil {
		t.Fatal("no exemplars recorded")
	}
	b1 := BucketIndex(3, 8)
	b2 := BucketIndex(200, 8)
	if ex[b1] == nil || ex[b1].TraceID != FormatTraceID(0xabc) || ex[b1].Value != 3 {
		t.Fatalf("bucket %d exemplar = %+v", b1, ex[b1])
	}
	if ex[b2] == nil || ex[b2].TraceID != FormatTraceID(0xdef) {
		t.Fatalf("bucket %d exemplar = %+v", b2, ex[b2])
	}

	if allocs := testing.AllocsPerRun(200, func() { h.ObserveExemplar(5, 0) }); allocs != 0 {
		t.Errorf("unsampled ObserveExemplar: %v allocs/op, want 0", allocs)
	}
}

func TestPromExemplarExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.HistogramBuckets("demo_latency_us", 8)
	h.ObserveExemplar(100, 0xbeef)
	h.Observe(3)

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := fmt.Sprintf(`# {trace_id="%s"} 100`, FormatTraceID(0xbeef))
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing exemplar %q:\n%s", want, out)
	}
	if problems := LintProm(strings.NewReader(out)); problems != nil {
		t.Fatalf("own exposition fails lint: %v", problems)
	}
}

func TestSLOBurnRate(t *testing.T) {
	reg := NewRegistry()
	slo := NewSLO(reg, "latency", 0.01, time.Minute)
	now := time.Unix(0, 0)
	slo.SetClock(func() time.Time { return now })

	slo.ObserveN(99, 1) // 1% bad = exactly at budget
	if burn := reg.Gauge("slo_burn_rate", "slo", "latency").Value(); burn != 1.0 {
		t.Fatalf("burn rate = %g, want 1.0", burn)
	}
	slo.ObserveN(0, 100) // now 101 bad / 200 total
	if ratio := reg.Gauge("slo_bad_ratio", "slo", "latency").Value(); ratio != 101.0/200.0 {
		t.Fatalf("bad ratio = %g, want %g", ratio, 101.0/200.0)
	}

	// Rolling: after two half-window advances with clean traffic, the
	// old bad observations age out entirely.
	now = now.Add(31 * time.Second)
	slo.ObserveN(100, 0)
	now = now.Add(31 * time.Second)
	slo.ObserveN(100, 0)
	if ratio := reg.Gauge("slo_bad_ratio", "slo", "latency").Value(); ratio != 0 {
		t.Fatalf("bad ratio after rollover = %g, want 0", ratio)
	}

	var nilSLO *SLO
	nilSLO.Observe(true)
	nilSLO.ObserveN(1, 1)
	if s := NewSLO(nil, "x", 0.1, time.Minute); s != nil {
		t.Fatal("nil registry should yield nil SLO")
	}
}

func TestLintPromCatchesProblems(t *testing.T) {
	cases := []struct {
		name string
		in   string
		bad  bool
	}{
		{"clean", "# TYPE a counter\na 1\nb{x=\"y\"} 2\n", false},
		{"clean exemplar", "h_bucket{le=\"+Inf\"} 3 # {trace_id=\"00ab\"} 7\n", false},
		{"escaped value", `m{k="a\"b\\c\nd"} 1` + "\n", false},
		{"duplicate series", "a 1\na 2\n", true},
		{"bad name", "1bad 1\n", true},
		{"bad label", "m{1k=\"v\"} 1\n", true},
		{"unquoted label", "m{k=v} 1\n", true},
		{"unterminated value", `m{k="v} 1` + "\n", true},
		{"bad escape", `m{k="\q"} 1` + "\n", true},
		{"missing value", "m{k=\"v\"}\n", true},
		{"bad value", "m notanumber\n", true},
		{"bad exemplar", "m 1 # notbrace 2\n", true},
		{"bad type", "# TYPE m frobnicator\n", true},
	}
	for _, tc := range cases {
		problems := LintProm(strings.NewReader(tc.in))
		if tc.bad && problems == nil {
			t.Errorf("%s: lint missed the problem", tc.name)
		}
		if !tc.bad && problems != nil {
			t.Errorf("%s: false positive: %v", tc.name, problems)
		}
	}
}
