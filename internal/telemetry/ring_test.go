package telemetry

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"sync"
	"testing"
)

func TestRingObserveAndSnapshot(t *testing.T) {
	r := NewRing(4)
	if r.Cap() != 4 {
		t.Fatalf("Cap() = %d, want 4", r.Cap())
	}
	r.Observe(2, 10)
	r.Observe(2, 5)
	r.Observe(3, 7)
	got := r.Snapshot(nil)
	want := []RingPoint{{Index: 2, Count: 2, Sum: 15}, {Index: 3, Count: 1, Sum: 7}}
	if len(got) != len(want) {
		t.Fatalf("snapshot = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestRingEvictsStaleWindowOnWrap(t *testing.T) {
	r := NewRing(4)
	r.Observe(1, 100)
	// Window 5 shares slot 1 with window 1 and is newer: it evicts it.
	r.Observe(5, 3)
	for _, p := range r.Snapshot(nil) {
		if p.Index == 1 {
			t.Fatalf("window 1 survived eviction: %+v", p)
		}
		if p.Index == 5 && (p.Count != 1 || p.Sum != 3) {
			t.Fatalf("window 5 = %+v, want count 1 sum 3", p)
		}
	}
	// A late observation into the evicted window must be dropped, not
	// resurrect it or corrupt window 5.
	r.Observe(1, 999)
	got := r.Snapshot(nil)
	if len(got) != 1 || got[0] != (RingPoint{Index: 5, Count: 1, Sum: 3}) {
		t.Fatalf("after late write: %+v", got)
	}
}

func TestRingDropsNegativeWindows(t *testing.T) {
	r := NewRing(4)
	r.Observe(-1, 5)
	if got := r.Snapshot(nil); len(got) != 0 {
		t.Fatalf("negative window recorded: %+v", got)
	}
}

func TestRingHoldsNewestCapWindows(t *testing.T) {
	r := NewRing(4)
	for w := int64(0); w < 10; w++ {
		r.Observe(w, 1)
	}
	got := r.Snapshot(nil)
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	for i, p := range got {
		if want := int64(6 + i); p.Index != want {
			t.Fatalf("window[%d].Index = %d, want %d", i, p.Index, want)
		}
	}
}

func TestRingConcurrentObserve(t *testing.T) {
	r := NewRing(8)
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Observe(int64(i%8), 1)
			}
		}()
	}
	wg.Wait()
	var count int64
	for _, p := range r.Snapshot(nil) {
		count += p.Count
	}
	if count != goroutines*per {
		t.Fatalf("total count = %d, want %d", count, goroutines*per)
	}
}

func TestMergeRingPointsSumsAndTruncates(t *testing.T) {
	a := []RingPoint{{1, 2, 10}, {3, 1, 5}}
	b := []RingPoint{{1, 1, 1}, {2, 4, 8}}
	got := MergeRingPoints(a, b, 2)
	want := []RingPoint{{2, 4, 8}, {3, 1, 5}}
	if len(got) != len(want) {
		t.Fatalf("merge = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
	// max <= 0 keeps everything, with same-index windows summed.
	all := MergeRingPoints(a, b, 0)
	if len(all) != 3 || all[0] != (RingPoint{1, 3, 11}) {
		t.Fatalf("merge(all) = %+v", all)
	}
}

// populateRing fills a ring with a deterministic pseudo-random workload.
func populateRing(seed int64) *Ring {
	r := NewRing(16)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 500; i++ {
		r.Observe(int64(rng.Intn(32)), int64(rng.Intn(1000)))
	}
	return r
}

// TestMergeRingPointsPermutationIdentical pins the cross-replica merge
// contract: merging any permutation of replica snapshots yields
// byte-identical JSON.
func TestMergeRingPointsPermutationIdentical(t *testing.T) {
	snaps := make([][]RingPoint, 4)
	for i := range snaps {
		snaps[i] = populateRing(int64(i + 1)).Snapshot(nil)
	}
	merge := func(order []int) []byte {
		var acc []RingPoint
		for _, i := range order {
			acc = MergeRingPoints(acc, snaps[i], 16)
		}
		b, err := json.Marshal(acc)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	want := merge([]int{0, 1, 2, 3})
	for _, order := range [][]int{{3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}} {
		if got := merge(order); !bytes.Equal(got, want) {
			t.Fatalf("order %v merged to different bytes:\n%s\nvs\n%s", order, got, want)
		}
	}
}

// TestMergeHistogramSnapshotsPermutationIdentical pins the same contract
// for histogram merges, including quantile recomputation and exemplar
// dropping (an exemplar is one replica's observation; keeping it would
// make merged bytes order-dependent).
func TestMergeHistogramSnapshotsPermutationIdentical(t *testing.T) {
	snaps := make([]HistogramSnapshot, 4)
	for i := range snaps {
		h := NewHistogram(DefaultHistBuckets)
		rng := rand.New(rand.NewSource(int64(i + 1)))
		for j := 0; j < 300; j++ {
			h.ObserveExemplar(int64(rng.Intn(1<<16)), uint64(i+1))
		}
		snaps[i] = h.Snapshot()
	}
	merge := func(order []int) []byte {
		var acc HistogramSnapshot
		for _, i := range order {
			acc = MergeHistogramSnapshots(acc, snaps[i])
		}
		b, err := json.Marshal(acc)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	want := merge([]int{0, 1, 2, 3})
	for _, order := range [][]int{{3, 2, 1, 0}, {1, 3, 0, 2}, {0, 2, 1, 3}} {
		if got := merge(order); !bytes.Equal(got, want) {
			t.Fatalf("order %v merged to different bytes", order)
		}
	}
	// Sanity: the merge preserved total mass and recomputed quantiles.
	var total int64
	for _, s := range snaps {
		total += s.Count
	}
	var acc HistogramSnapshot
	for _, s := range snaps {
		acc = MergeHistogramSnapshots(acc, s)
	}
	if acc.Count != total {
		t.Fatalf("merged Count = %d, want %d", acc.Count, total)
	}
	if len(acc.Exemplars) != 0 {
		t.Fatalf("merged snapshot kept exemplars: %+v", acc.Exemplars)
	}
	if acc.P50 <= 0 || acc.P99 < acc.P50 {
		t.Fatalf("merged quantiles not recomputed: p50=%v p99=%v", acc.P50, acc.P99)
	}
}
