// Package telemetry is the project's shared observability layer: a
// concurrency-safe metrics registry (counters, gauges, log-2 histograms
// with quantile estimation), a lightweight span tracer with Chrome
// trace-event export, and a levelled progress logger. The simulator, the
// experiment pipeline, and the serving subsystem all record into it, and
// cmd/dvfsstat turns its dumps back into residency tables, divergence
// summaries, and latency quantiles.
//
// Handles returned by the registry are stable pointers whose operations
// are single atomic updates — safe for concurrent use and allocation-free
// on the hot path. Registration (get-or-create) takes a lock and may
// allocate; instrument hot loops by resolving handles once up front.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically-increasing (or, for in-flight style metrics,
// up/down) integer metric. The zero value is usable.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a float-valued metric that may move in either direction.
// The zero value is usable.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(floatBits(v)) }

// Add adjusts the gauge by d (CAS loop; lock-free).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return bitsFloat(g.bits.Load()) }

// Registry holds named metrics. All methods are safe for concurrent use;
// a metric is identified by its name plus an optional set of label
// key/value pairs, and repeated lookups return the same handle.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	build    map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// SetBuild attaches build attribution (e.g. buildinfo.Info()) to the
// registry; snapshots carry it so a scraped dump can be traced back to
// the binary that produced it. The map is copied.
func (r *Registry) SetBuild(info map[string]string) {
	cp := make(map[string]string, len(info))
	for k, v := range info {
		cp[k] = v
	}
	r.mu.Lock()
	r.build = cp
	r.mu.Unlock()
}

// MetricID renders a metric identifier: the bare name, or
// name{k="v",...} with label pairs sorted by key. labels must come in
// key/value pairs.
func MetricID(name string, labels ...string) string {
	if len(labels) == 0 {
		return name
	}
	if len(labels)%2 != 0 {
		panic("telemetry: odd label list for " + name)
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// ParseID splits a metric identifier produced by MetricID back into its
// base name and label map (nil when the id carries no labels).
func ParseID(id string) (name string, labels map[string]string) {
	open := strings.IndexByte(id, '{')
	if open < 0 || !strings.HasSuffix(id, "}") {
		return id, nil
	}
	name = id[:open]
	body := id[open+1 : len(id)-1]
	if body == "" {
		return name, nil
	}
	labels = make(map[string]string)
	for _, part := range splitLabels(body) {
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			continue
		}
		k := part[:eq]
		v := part[eq+1:]
		// MetricID rendered the value with %q, so strconv.Unquote is the
		// exact inverse — it restores escaped quotes, backslashes, and
		// newlines. Fall back to bare trimming for hand-written ids.
		if uq, err := strconv.Unquote(v); err == nil {
			v = uq
		} else {
			v = strings.TrimPrefix(v, `"`)
			v = strings.TrimSuffix(v, `"`)
		}
		labels[k] = v
	}
	return name, labels
}

// splitLabels splits `k="v",k2="v2"` on commas outside quotes. A
// backslash inside quotes escapes the next byte, so values containing
// `\"` or `\\` do not derail the quote tracking.
func splitLabels(s string) []string {
	var out []string
	inQuote := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++ // skip the escaped byte
			}
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// Counter returns (creating if needed) the counter with this identity.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	id := MetricID(name, labels...)
	r.mu.RLock()
	c, ok := r.counters[id]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[id]; !ok {
		c = &Counter{}
		r.counters[id] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge with this identity.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	id := MetricID(name, labels...)
	r.mu.RLock()
	g, ok := r.gauges[id]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[id]; !ok {
		g = &Gauge{}
		r.gauges[id] = g
	}
	return g
}

// Histogram returns (creating if needed) a log-2 histogram with the
// default bucket count.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.HistogramBuckets(name, DefaultHistBuckets, labels...)
}

// HistogramBuckets is Histogram with an explicit bucket count. The count
// is fixed at first creation; later lookups ignore the argument.
func (r *Registry) HistogramBuckets(name string, buckets int, labels ...string) *Histogram {
	id := MetricID(name, labels...)
	r.mu.RLock()
	h, ok := r.hists[id]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[id]; !ok {
		h = NewHistogram(buckets)
		r.hists[id] = h
	}
	return h
}

// HistogramSnapshot is the JSON view of one histogram.
type HistogramSnapshot struct {
	// Buckets[i] counts observations in [2^(i-1), 2^i) (index 0 is < 1);
	// the last bucket absorbs the overflow tail.
	Buckets []int64 `json:"buckets"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	P50     float64 `json:"p50"`
	P95     float64 `json:"p95"`
	P99     float64 `json:"p99"`
	// Exemplars[i], when non-nil, is a sampled observation from bucket i
	// (absent entirely for histograms that never saw a sampled request,
	// keeping older dumps byte-identical).
	Exemplars []*Exemplar `json:"exemplars,omitempty"`
}

// Snapshot is a point-in-time JSON-friendly view of a registry. Counter
// values are read individually (consistent enough for monitoring, as in
// serve.Metrics).
type Snapshot struct {
	// Build attributes the snapshot to the producing binary (SetBuild).
	Build      map[string]string            `json:"build,omitempty"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric currently registered.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Build:      r.build,
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for id, c := range r.counters {
		s.Counters[id] = c.Load()
	}
	for id, g := range r.gauges {
		s.Gauges[id] = g.Value()
	}
	for id, h := range r.hists {
		s.Histograms[id] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON — the dump
// format cmd/dvfsstat consumes.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ReadSnapshot parses a dump written by WriteJSON.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return s, fmt.Errorf("telemetry: %w", err)
	}
	return s, nil
}

// ReadSnapshotFile reads a WriteJSON dump from disk.
func ReadSnapshotFile(path string) (Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return Snapshot{}, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// WriteProm writes the snapshot in the Prometheus text exposition format
// (version 0.0.4): counters and gauges as-is, histograms as cumulative
// le-labelled buckets with _sum and _count series.
func (s Snapshot) WriteProm(w io.Writer) error {
	typed := make(map[string]string) // base name → TYPE already emitted
	emitType := func(base, kind string) error {
		if typed[base] == kind {
			return nil
		}
		typed[base] = kind
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
		return err
	}

	if len(s.Build) > 0 {
		// The Prometheus build-attribution idiom: a constant-1 gauge whose
		// labels carry the binary identity.
		if err := emitType("build_info", "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s 1\n", MetricID("build_info", flatten(s.Build)...)); err != nil {
			return err
		}
	}
	for _, id := range sortedKeys(s.Counters) {
		base, _ := ParseID(id)
		if err := emitType(base, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", id, s.Counters[id]); err != nil {
			return err
		}
	}
	for _, id := range sortedKeys(s.Gauges) {
		base, _ := ParseID(id)
		if err := emitType(base, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", id, s.Gauges[id]); err != nil {
			return err
		}
	}
	for _, id := range sortedKeys(s.Histograms) {
		base, labels := ParseID(id)
		if err := emitType(base, "histogram"); err != nil {
			return err
		}
		h := s.Histograms[id]
		var cum int64
		for i, c := range h.Buckets {
			cum += c
			_, hi := BucketBounds(i)
			le := fmt.Sprintf("%g", hi)
			if i == len(h.Buckets)-1 {
				le = "+Inf"
			}
			// OpenMetrics-style exemplar suffix: the bucket's sampled
			// observation, keyed by trace ID, rides after a " # ".
			exemplar := ""
			if i < len(h.Exemplars) && h.Exemplars[i] != nil {
				e := h.Exemplars[i]
				exemplar = fmt.Sprintf(" # {trace_id=%q} %d", e.TraceID, e.Value)
			}
			if _, err := fmt.Fprintf(w, "%s %d%s\n", MetricID(base+"_bucket", flatten(labels, "le", le)...), cum, exemplar); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", MetricID(base+"_sum", flatten(labels)...), h.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", MetricID(base+"_count", flatten(labels)...), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteProm writes the registry's current state in Prometheus text form.
func (r *Registry) WriteProm(w io.Writer) error { return r.Snapshot().WriteProm(w) }

// flatten turns a label map back into a pair list, appending extra pairs.
func flatten(labels map[string]string, extra ...string) []string {
	out := make([]string, 0, len(labels)*2+len(extra))
	for _, k := range sortedKeys(labels) {
		out = append(out, k, labels[k])
	}
	return append(out, extra...)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
