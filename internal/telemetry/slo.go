package telemetry

import (
	"sync"
	"time"
)

// SLO tracks an error budget over a rolling window and exposes its burn
// rate as registry gauges. "Bad" is whatever the caller says it is — a
// decision past its latency budget, a shed row — and budget is the bad
// fraction the SLO tolerates (e.g. 0.001 = 99.9%). Burn rate is the
// classic multi-window alerting quantity: observed bad fraction divided
// by budget, so 1.0 means the budget is being consumed exactly as fast
// as it accrues and anything sustained above 1.0 exhausts it.
//
// The rolling window is approximated by two half-windows: observations
// land in the current half, and the bad fraction is computed over the
// current + previous halves, giving a window-to-1.5-window lookback
// without per-observation timestamps. Gauges published:
//
//	slo_burn_rate{slo="<name>"}  — bad fraction / budget
//	slo_bad_ratio{slo="<name>"}  — raw bad fraction
//	slo_budget{slo="<name>"}     — the configured budget (constant)
type SLO struct {
	budget float64
	half   time.Duration
	now    func() time.Time

	burn    *Gauge
	ratio   *Gauge
	budgetG *Gauge

	mu       sync.Mutex
	curStart time.Time
	curGood  int64
	curBad   int64
	prevGood int64
	prevBad  int64
}

// NewSLO registers an SLO named name on reg with the given bad-fraction
// budget and rolling window. A nil registry, non-positive budget, or
// non-positive window returns nil; a nil *SLO ignores all observations.
func NewSLO(reg *Registry, name string, budget float64, window time.Duration) *SLO {
	if reg == nil || budget <= 0 || window <= 0 {
		return nil
	}
	s := &SLO{
		budget:  budget,
		half:    window / 2,
		now:     time.Now,
		burn:    reg.Gauge("slo_burn_rate", "slo", name),
		ratio:   reg.Gauge("slo_bad_ratio", "slo", name),
		budgetG: reg.Gauge("slo_budget", "slo", name),
	}
	s.budgetG.Set(budget)
	return s
}

// SetClock overrides the time source (tests).
func (s *SLO) SetClock(now func() time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.now = now
	s.curStart = time.Time{}
	s.mu.Unlock()
}

// Observe records one outcome.
func (s *SLO) Observe(bad bool) {
	if bad {
		s.ObserveN(0, 1)
	} else {
		s.ObserveN(1, 0)
	}
}

// ObserveN records a batch of outcomes and republishes the gauges.
func (s *SLO) ObserveN(good, bad int64) {
	if s == nil || (good == 0 && bad == 0) {
		return
	}
	s.mu.Lock()
	now := s.now()
	if s.curStart.IsZero() {
		s.curStart = now
	} else if now.Sub(s.curStart) >= s.half {
		s.prevGood, s.prevBad = s.curGood, s.curBad
		s.curGood, s.curBad = 0, 0
		s.curStart = now
	}
	s.curGood += good
	s.curBad += bad
	totBad := s.curBad + s.prevBad
	tot := totBad + s.curGood + s.prevGood
	s.mu.Unlock()

	frac := 0.0
	if tot > 0 {
		frac = float64(totBad) / float64(tot)
	}
	s.ratio.Set(frac)
	s.burn.Set(frac / s.budget)
}
