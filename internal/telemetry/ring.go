package telemetry

import (
	"sort"
	"sync"
)

// Canonical Content-Type values for the project's HTTP expositions. Every
// handler sets one of these explicitly — the charset on JSON and the
// exposition version on Prometheus text are part of the contract scrape
// pipelines key on, not a nicety — and the handler tests assert them.
const (
	// ContentTypeJSON is served by /telemetry, /healthz, /metrics (JSON)
	// and every /debug/* JSON endpoint.
	ContentTypeJSON = "application/json; charset=utf-8"
	// ContentTypeProm is served by /metrics.prom (text exposition 0.0.4).
	ContentTypeProm = "text/plain; version=0.0.4"
	// ContentTypeNDJSON is served by streaming JSONL dumps such as
	// /debug/decisions.
	ContentTypeNDJSON = "application/x-ndjson"
)

// RingPoint is one time window of a fixed-size time-series ring: the
// window's absolute index (time / window width — comparable across
// replicas that agree on the width), how many observations landed in it,
// and their sum. All fields are integers so cross-replica merging is
// exact, commutative, and associative — the property the byte-identical
// merge tests pin.
type RingPoint struct {
	Index int64 `json:"index"`
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
}

// Ring is a fixed-size ring of consecutive time windows — the bounded
// memory behind per-window counter rates ("energy saved per second over
// the last minute") where a plain counter only answers "ever". Slot
// reuse is by window index modulo capacity: observing window w evicts
// the stale window that previously occupied w's slot, so the ring always
// holds at most Cap of the most recently observed windows and never
// allocates after construction. Observations into windows older than
// what their slot currently holds are dropped (late data cannot resurrect
// an evicted window). Safe for concurrent use.
type Ring struct {
	mu    sync.Mutex
	slots []RingPoint
}

// DefaultRingWindows is the ring capacity used when a caller passes
// n <= 0: with 1-second windows, a bit over a minute of history.
const DefaultRingWindows = 64

// NewRing returns a ring holding up to n windows (n <= 0 takes
// DefaultRingWindows).
func NewRing(n int) *Ring {
	if n <= 0 {
		n = DefaultRingWindows
	}
	r := &Ring{slots: make([]RingPoint, n)}
	for i := range r.slots {
		r.slots[i].Index = -1
	}
	return r
}

// Cap returns the ring's window capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Observe adds v to window index w (w must be >= 0; negative windows are
// dropped). A w newer than its slot's occupant resets the slot; a w older
// is dropped.
func (r *Ring) Observe(w, v int64) {
	if w < 0 {
		return
	}
	slot := int(w % int64(len(r.slots)))
	r.mu.Lock()
	p := &r.slots[slot]
	switch {
	case p.Index == w:
	case p.Index < w:
		*p = RingPoint{Index: w}
	default:
		r.mu.Unlock()
		return
	}
	p.Count++
	p.Sum += v
	r.mu.Unlock()
}

// Snapshot appends the ring's occupied windows to dst in ascending window
// order and returns it — the deterministic serialization merged across
// replicas.
func (r *Ring) Snapshot(dst []RingPoint) []RingPoint {
	r.mu.Lock()
	for _, p := range r.slots {
		if p.Index >= 0 {
			dst = append(dst, p)
		}
	}
	r.mu.Unlock()
	sort.Slice(dst, func(i, j int) bool { return dst[i].Index < dst[j].Index })
	return dst
}

// MergeRingPoints merges two ring snapshots: windows with the same index
// sum exactly, the result is ascending by index, and only the newest max
// windows survive (max <= 0 keeps everything). Integer sums make the
// merge commutative and associative, so any replica permutation produces
// the same bytes.
func MergeRingPoints(a, b []RingPoint, max int) []RingPoint {
	byIdx := make(map[int64]RingPoint, len(a)+len(b))
	for _, p := range a {
		byIdx[p.Index] = p
	}
	for _, p := range b {
		q := byIdx[p.Index]
		q.Index = p.Index
		q.Count += p.Count
		q.Sum += p.Sum
		byIdx[p.Index] = q
	}
	out := make([]RingPoint, 0, len(byIdx))
	for _, p := range byIdx {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// MergeHistogramSnapshots merges two log-2 histogram snapshots by
// element-wise bucket addition (the shorter bucket array is treated as
// zero-padded). Quantiles are recomputed from the merged buckets and
// exemplars are dropped — an exemplar is one replica's observation, and
// keeping either side's would make the merged bytes depend on replica
// order.
func MergeHistogramSnapshots(a, b HistogramSnapshot) HistogramSnapshot {
	n := len(a.Buckets)
	if len(b.Buckets) > n {
		n = len(b.Buckets)
	}
	buckets := make([]int64, n)
	for i, c := range a.Buckets {
		buckets[i] += c
	}
	for i, c := range b.Buckets {
		buckets[i] += c
	}
	return HistogramSnapshot{
		Buckets: buckets,
		Count:   a.Count + b.Count,
		Sum:     a.Sum + b.Sum,
		P50:     Quantile(buckets, 0.50),
		P95:     Quantile(buckets, 0.95),
		P99:     Quantile(buckets, 0.99),
	}
}
