package telemetry

import (
	"bytes"
	"os"
	"reflect"
	"testing"
	"time"
)

// fakeClock advances a deterministic amount on every reading.
func fakeClock(step time.Duration) func() time.Time {
	t := time.Unix(0, 0)
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

func TestTracerWritesReadableSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetClock(fakeClock(time.Millisecond))

	sp := tr.Start("train", "epochs", "50")
	sp.SetCat("pipeline")
	sp.SetTID(3)
	sp.End()
	tr.Start("eval").End()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	spans, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	got := spans[0]
	if got.Name != "train" || got.Cat != "pipeline" || got.TID != 3 {
		t.Fatalf("span fields = %+v", got)
	}
	if got.Attrs["epochs"] != "50" {
		t.Fatalf("attrs = %v", got.Attrs)
	}
	// Clock steps once at Start and once at End → 1 ms duration.
	if got.DurUs != 1000 {
		t.Fatalf("dur = %g µs, want 1000", got.DurUs)
	}
	if spans[1].StartUs <= got.StartUs {
		t.Fatalf("spans out of order: %g then %g", got.StartUs, spans[1].StartUs)
	}
}

func TestNilTracerAndSpanAreSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("anything", "k", "v")
	sp.SetAttr("k2", "v2")
	sp.SetCat("c")
	sp.SetTID(1)
	sp.End()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestChromeTraceRoundTripsFixture exports the checked-in span fixture to
// Chrome trace-event JSON and re-imports it: every field must survive.
func TestChromeTraceRoundTripsFixture(t *testing.T) {
	f, err := os.Open("testdata/spans.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := ReadSpans(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 4 {
		t.Fatalf("fixture has %d spans, want 4", len(spans))
	}

	var chrome bytes.Buffer
	if err := WriteChromeTrace(&chrome, spans); err != nil {
		t.Fatal(err)
	}
	back, err := ReadChromeTrace(&chrome)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(spans, back) {
		t.Fatalf("chrome round trip diverged:\n in: %+v\nout: %+v", spans, back)
	}
}

func TestLoggerCountsAndQuiet(t *testing.T) {
	reg := NewRegistry()

	quiet := NewLogger(nil, reg)
	quiet.Logf("invisible %d", 1)
	quiet.Logf("invisible %d", 2)
	if got := reg.Counter("log_lines_total").Load(); got != 2 {
		t.Fatalf("quiet logger counted %d lines, want 2", got)
	}

	var buf bytes.Buffer
	loud := NewLogger(&buf, reg)
	loud.Logf("hello %s", "world")
	if buf.String() != "hello world\n" {
		t.Fatalf("output = %q", buf.String())
	}
	if got := reg.Counter("log_lines_total").Load(); got != 3 {
		t.Fatalf("lines counter = %d, want 3", got)
	}

	var nilLogger *Logger
	nilLogger.Logf("must not panic")
	if f := nilLogger.Func(); f == nil {
		t.Fatal("nil logger Func() returned nil")
	} else {
		f("still must not panic")
	}
}
