package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// SpanRecord is one completed span as serialized to JSONL: a named,
// attributed interval on the tracer's clock (microseconds since the
// tracer was created).
type SpanRecord struct {
	Name    string            `json:"name"`
	Cat     string            `json:"cat,omitempty"`
	TID     int               `json:"tid,omitempty"`
	StartUs float64           `json:"start_us"`
	DurUs   float64           `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Tracer records spans as JSON-lines to a writer. A nil *Tracer is a
// valid no-op tracer, so instrumented code never needs nil checks:
//
//	sp := tracer.Start("train", "epochs", "50")
//	defer sp.End()
//
// Writes are serialized internally; the first write error sticks and is
// reported by Err.
type Tracer struct {
	mu    sync.Mutex
	w     *bufio.Writer
	enc   *json.Encoder
	epoch time.Time
	now   func() time.Time
	err   error
}

// NewTracer returns a tracer writing JSONL spans to w.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriter(w)
	return &Tracer{w: bw, enc: json.NewEncoder(bw), epoch: time.Now(), now: time.Now}
}

// SetClock overrides the tracer's time source (tests); epoch is re-read
// from the new clock.
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
	t.epoch = now()
}

// Span is an in-flight interval; call End exactly once. A nil *Span
// (from a nil tracer) ignores all calls.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	tid   int
	start time.Time
	attrs map[string]string
}

// Start opens a span. attrs are key/value pairs attached to the record.
func (t *Tracer) Start(name string, attrs ...string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{t: t, name: name, start: t.clock()}
	for i := 0; i+1 < len(attrs); i += 2 {
		sp.SetAttr(attrs[i], attrs[i+1])
	}
	return sp
}

func (t *Tracer) clock() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.now()
}

// SetAttr attaches or replaces one attribute.
func (sp *Span) SetAttr(k, v string) {
	if sp == nil {
		return
	}
	if sp.attrs == nil {
		sp.attrs = make(map[string]string)
	}
	sp.attrs[k] = v
}

// SetCat sets the span's category (Chrome trace "cat" field).
func (sp *Span) SetCat(cat string) {
	if sp != nil {
		sp.cat = cat
	}
}

// SetTID tags the span with a logical track id (Chrome trace "tid").
func (sp *Span) SetTID(tid int) {
	if sp != nil {
		sp.tid = tid
	}
}

// End closes the span and writes its record.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	t := sp.t
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.now()
	rec := SpanRecord{
		Name:    sp.name,
		Cat:     sp.cat,
		TID:     sp.tid,
		StartUs: float64(sp.start.Sub(t.epoch)) / float64(time.Microsecond),
		DurUs:   float64(end.Sub(sp.start)) / float64(time.Microsecond),
		Attrs:   sp.attrs,
	}
	if t.err == nil {
		t.err = t.enc.Encode(rec)
	}
}

// Flush drains buffered records to the underlying writer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	t.err = t.w.Flush()
	return t.err
}

// Err returns the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// ReadSpans parses a JSONL span stream written by a Tracer.
func ReadSpans(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	dec := json.NewDecoder(r)
	for {
		var rec SpanRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("telemetry: span %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// chromeEvent is one entry of the Chrome trace-event format ("X" =
// complete event), viewable in chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TsUs float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace exports spans in the Chrome trace-event JSON format.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	ct := chromeTrace{TraceEvents: make([]chromeEvent, len(spans))}
	for i, sp := range spans {
		ct.TraceEvents[i] = chromeEvent{
			Name: sp.Name,
			Cat:  sp.Cat,
			Ph:   "X",
			TsUs: sp.StartUs,
			Dur:  sp.DurUs,
			PID:  1,
			TID:  sp.TID,
			Args: sp.Attrs,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ct)
}

// ReadChromeTrace parses a Chrome trace-event file back into spans
// (complete "X" events only), inverting WriteChromeTrace.
func ReadChromeTrace(r io.Reader) ([]SpanRecord, error) {
	var ct chromeTrace
	if err := json.NewDecoder(r).Decode(&ct); err != nil {
		return nil, fmt.Errorf("telemetry: chrome trace: %w", err)
	}
	var out []SpanRecord
	for _, ev := range ct.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		out = append(out, SpanRecord{
			Name:    ev.Name,
			Cat:     ev.Cat,
			TID:     ev.TID,
			StartUs: ev.TsUs,
			DurUs:   ev.Dur,
			Attrs:   ev.Args,
		})
	}
	return out, nil
}
