package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one completed span as serialized to JSONL: a named,
// attributed interval on the tracer's clock (microseconds since the
// tracer was created). TraceID/SpanID/ParentID (fixed-width hex, empty
// when the span is not part of a distributed trace) link spans across
// process boundaries: every span of one decision shares TraceID, and
// ParentID points at the span that propagated the context to this hop.
type SpanRecord struct {
	Name     string            `json:"name"`
	Cat      string            `json:"cat,omitempty"`
	TID      int               `json:"tid,omitempty"`
	TraceID  string            `json:"trace_id,omitempty"`
	SpanID   string            `json:"span_id,omitempty"`
	ParentID string            `json:"parent_id,omitempty"`
	StartUs  float64           `json:"start_us"`
	DurUs    float64           `json:"dur_us"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Tracer records spans as JSON-lines to a writer. A nil *Tracer is a
// valid no-op tracer, so instrumented code never needs nil checks:
//
//	sp := tracer.Start("train", "epochs", "50")
//	defer sp.End()
//
// Writes are serialized internally; the first write error sticks and is
// reported by Err.
type Tracer struct {
	mu    sync.Mutex
	w     *bufio.Writer
	enc   *json.Encoder
	epoch time.Time
	now   func() time.Time
	err   error

	spanSeed uint64
	spanSeq  atomic.Uint64
}

// NewTracer returns a tracer writing JSONL spans to w.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriter(w)
	return &Tracer{
		w: bw, enc: json.NewEncoder(bw),
		epoch: time.Now(), now: time.Now,
		spanSeed: newSpanIDSeed(),
	}
}

// SetClock overrides the tracer's time source (tests); epoch is re-read
// from the new clock.
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
	t.epoch = now()
}

// SetSpanIDSeed overrides the seed span IDs are derived from (tests
// that need byte-deterministic span files).
func (t *Tracer) SetSpanIDSeed(seed uint64) {
	if t != nil {
		t.spanSeed = seed
	}
}

// Span is an in-flight interval; call End exactly once. A nil *Span
// (from a nil tracer, or an unsampled trace) ignores all calls.
type Span struct {
	t       *Tracer
	name    string
	cat     string
	tid     int
	start   time.Time
	attrs   map[string]string
	traceID uint64
	spanID  uint64
	parent  uint64
}

// Start opens a span. attrs are key/value pairs attached to the record.
func (t *Tracer) Start(name string, attrs ...string) *Span {
	if t == nil {
		return nil
	}
	return t.startAt(name, t.clock(), TraceContext{}, attrs)
}

// StartAt opens a span whose start time is supplied by the caller — the
// retrospective form used by pipelines that only learn an interval's
// boundaries after the fact (a router attributing queue wait once the
// row is dispatched). Close it with EndAt.
func (t *Tracer) StartAt(name string, start time.Time, attrs ...string) *Span {
	if t == nil {
		return nil
	}
	return t.startAt(name, start, TraceContext{}, attrs)
}

// StartSpan opens a span belonging to a distributed trace: the span
// carries tc's trace ID, its parent is tc's span ID, and its own span
// ID (see Context) is minted from the tracer's seed. Returns nil — a
// free no-op span — when the tracer is nil or the trace is unsampled,
// so the disabled path stays allocation-free.
func (t *Tracer) StartSpan(tc TraceContext, name string, attrs ...string) *Span {
	if t == nil || !tc.Sampled() {
		return nil
	}
	return t.startAt(name, t.clock(), tc, attrs)
}

// StartSpanAt is StartSpan with a caller-supplied start time.
func (t *Tracer) StartSpanAt(tc TraceContext, name string, start time.Time, attrs ...string) *Span {
	if t == nil || !tc.Sampled() {
		return nil
	}
	return t.startAt(name, start, tc, attrs)
}

func (t *Tracer) startAt(name string, start time.Time, tc TraceContext, attrs []string) *Span {
	sp := &Span{t: t, name: name, start: start}
	if tc.Valid() {
		sp.traceID = tc.TraceID
		sp.parent = tc.SpanID
		sp.spanID = mix64(t.spanSeed ^ tc.TraceID ^ (t.spanSeq.Add(1) << 1))
		if sp.spanID == 0 {
			sp.spanID = 1
		}
	}
	for i := 0; i+1 < len(attrs); i += 2 {
		sp.SetAttr(attrs[i], attrs[i+1])
	}
	return sp
}

func (t *Tracer) clock() time.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.now()
}

// Context returns the propagation context rooted at this span: same
// trace, this span as the parent of whatever the context is handed to.
// A nil or trace-less span returns the zero context.
func (sp *Span) Context() TraceContext {
	if sp == nil || sp.traceID == 0 {
		return TraceContext{}
	}
	return TraceContext{TraceID: sp.traceID, SpanID: sp.spanID, Flags: FlagSampled}
}

// SetAttr attaches or replaces one attribute.
func (sp *Span) SetAttr(k, v string) {
	if sp == nil {
		return
	}
	if sp.attrs == nil {
		sp.attrs = make(map[string]string)
	}
	sp.attrs[k] = v
}

// SetCat sets the span's category (Chrome trace "cat" field).
func (sp *Span) SetCat(cat string) {
	if sp != nil {
		sp.cat = cat
	}
}

// SetTID tags the span with a logical track id (Chrome trace "tid").
func (sp *Span) SetTID(tid int) {
	if sp != nil {
		sp.tid = tid
	}
}

// End closes the span and writes its record.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.endAt(sp.t.clock())
}

// EndAt closes the span at a caller-supplied end time — the pair of
// StartAt for retrospective spans.
func (sp *Span) EndAt(end time.Time) {
	if sp == nil {
		return
	}
	sp.endAt(end)
}

func (sp *Span) endAt(end time.Time) {
	t := sp.t
	rec := SpanRecord{
		Name:  sp.name,
		Cat:   sp.cat,
		TID:   sp.tid,
		DurUs: float64(end.Sub(sp.start)) / float64(time.Microsecond),
		Attrs: sp.attrs,
	}
	if sp.traceID != 0 {
		rec.TraceID = FormatTraceID(sp.traceID)
		rec.SpanID = FormatTraceID(sp.spanID)
		if sp.parent != 0 {
			rec.ParentID = FormatTraceID(sp.parent)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rec.StartUs = float64(sp.start.Sub(t.epoch)) / float64(time.Microsecond)
	if t.err == nil {
		t.err = t.enc.Encode(rec)
	}
}

// Flush drains buffered records to the underlying writer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	t.err = t.w.Flush()
	return t.err
}

// Err returns the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// ReadSpans parses a JSONL span stream written by a Tracer.
func ReadSpans(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	dec := json.NewDecoder(r)
	for {
		var rec SpanRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("telemetry: span %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// ReadSpansFile reads a JSONL span capture from disk.
func ReadSpansFile(path string) ([]SpanRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSpans(f)
}

// chromeEvent is one entry of the Chrome trace-event format ("X" =
// complete event, "M" = metadata), viewable in chrome://tracing and
// Perfetto. Trace-linkage IDs travel in Args so the viewer shows them
// on click.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TsUs float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

func spanToChrome(sp SpanRecord, pid int) chromeEvent {
	args := sp.Attrs
	if sp.TraceID != "" {
		args = make(map[string]string, len(sp.Attrs)+3)
		for k, v := range sp.Attrs {
			args[k] = v
		}
		args["trace_id"] = sp.TraceID
		args["span_id"] = sp.SpanID
		if sp.ParentID != "" {
			args["parent_id"] = sp.ParentID
		}
	}
	return chromeEvent{
		Name: sp.Name,
		Cat:  sp.Cat,
		Ph:   "X",
		TsUs: sp.StartUs,
		Dur:  sp.DurUs,
		PID:  pid,
		TID:  sp.TID,
		Args: args,
	}
}

// WriteChromeTrace exports spans in the Chrome trace-event JSON format.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	return WriteChromeTraceMulti(w, [][]SpanRecord{spans}, nil)
}

// WriteChromeTraceMulti exports several span captures — typically one
// per process of a distributed serving stack — into one Chrome trace.
// Each input group gets its own pid (1-based input order) plus a
// process_name metadata event naming it, so router and replica spans
// land on separate tracks instead of overlapping. names labels the
// groups; missing names fall back to "process N".
func WriteChromeTraceMulti(w io.Writer, groups [][]SpanRecord, names []string) error {
	var ct chromeTrace
	for i, spans := range groups {
		pid := i + 1
		if len(groups) > 1 || len(names) > i {
			name := fmt.Sprintf("process %d", pid)
			if i < len(names) && names[i] != "" {
				name = filepath.Base(names[i])
			}
			ct.TraceEvents = append(ct.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", PID: pid,
				Args: map[string]string{"name": name},
			})
		}
		for _, sp := range spans {
			ct.TraceEvents = append(ct.TraceEvents, spanToChrome(sp, pid))
		}
	}
	if ct.TraceEvents == nil {
		ct.TraceEvents = []chromeEvent{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ct)
}

// ReadChromeTrace parses a Chrome trace-event file back into spans
// (complete "X" events only), inverting WriteChromeTrace: trace-linkage
// IDs stashed in Args move back into their SpanRecord fields.
func ReadChromeTrace(r io.Reader) ([]SpanRecord, error) {
	var ct chromeTrace
	if err := json.NewDecoder(r).Decode(&ct); err != nil {
		return nil, fmt.Errorf("telemetry: chrome trace: %w", err)
	}
	var out []SpanRecord
	for _, ev := range ct.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		rec := SpanRecord{
			Name:    ev.Name,
			Cat:     ev.Cat,
			TID:     ev.TID,
			StartUs: ev.TsUs,
			DurUs:   ev.Dur,
			Attrs:   ev.Args,
		}
		if id, ok := ev.Args["trace_id"]; ok {
			rec.TraceID = id
			rec.SpanID = ev.Args["span_id"]
			rec.ParentID = ev.Args["parent_id"]
			attrs := make(map[string]string, len(ev.Args))
			for k, v := range ev.Args {
				switch k {
				case "trace_id", "span_id", "parent_id":
				default:
					attrs[k] = v
				}
			}
			if len(attrs) == 0 {
				attrs = nil
			}
			rec.Attrs = attrs
		}
		out = append(out, rec)
	}
	return out, nil
}
