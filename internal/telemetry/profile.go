package telemetry

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns the
// stop function. An empty path is a no-op (callers wire it straight to a
// -cpuprofile flag).
func StartCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes an allocation profile to path after forcing a
// GC (so the profile reflects live objects). An empty path is a no-op.
func WriteHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: heap profile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("telemetry: heap profile: %w", err)
	}
	return nil
}
