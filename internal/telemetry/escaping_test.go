package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// TestMetricIDEscapedLabelRoundTrip pins ParseID as the exact inverse of
// MetricID for hostile label values: quotes, backslashes, newlines, and
// commas inside values must survive, and splitLabels must not be fooled
// by escaped quotes.
func TestMetricIDEscapedLabelRoundTrip(t *testing.T) {
	cases := []map[string]string{
		{"path": `C:\temp\x`},
		{"msg": "a \"quoted\" value"},
		{"msg": `tricky \" half escape`},
		{"multi": "line one\nline two"},
		{"a": `v1,with,commas`, "b": `"`, "c": `\`},
		{"empty": ""},
	}
	for _, labels := range cases {
		var flat []string
		for k, v := range labels {
			flat = append(flat, k, v)
		}
		id := MetricID("m", flat...)
		name, got := ParseID(id)
		if name != "m" {
			t.Fatalf("id %q: name = %q", id, name)
		}
		if len(got) != len(labels) {
			t.Fatalf("id %q: parsed %d labels, want %d (%v)", id, len(got), len(labels), got)
		}
		for k, v := range labels {
			if got[k] != v {
				t.Fatalf("id %q: label %s = %q, want %q", id, k, got[k], v)
			}
		}
	}
}

// TestHistogramPromEscapedLabels pins that a histogram with hostile
// label values round-trips through WriteProm's ParseID→MetricID path
// without double-escaping: the _bucket/_sum/_count series must carry the
// label rendered exactly once.
func TestHistogramPromEscapedLabels(t *testing.T) {
	r := NewRegistry()
	r.HistogramBuckets("lat", 4, "conn", `peer "a"\b`).Observe(3)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := `conn="peer \"a\"\\b"`
	if !strings.Contains(out, "lat_sum{"+want+"}") {
		t.Fatalf("_sum series mis-escaped:\n%s", out)
	}
	if strings.Contains(out, `\\\"`) {
		t.Fatalf("label value double-escaped:\n%s", out)
	}
	// Every _bucket line must parse back to the original value.
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lat_bucket{") {
			continue
		}
		id := line[:strings.LastIndexByte(line, ' ')]
		_, labels := ParseID(id)
		if labels["conn"] != `peer "a"\b` {
			t.Fatalf("bucket line %q parsed conn = %q", line, labels["conn"])
		}
	}
}

// TestWritePromDeterministic pins byte-identical exposition output for a
// registry populated in two different orders.
func TestWritePromDeterministic(t *testing.T) {
	build := func(order []int) string {
		r := NewRegistry()
		r.SetBuild(map[string]string{"go": "go1.x", "revision": "abc"})
		for _, i := range order {
			switch i {
			case 0:
				r.Counter("reqs", "code", "200").Add(2)
			case 1:
				r.Counter("reqs", "code", "500").Add(1)
			case 2:
				r.Gauge("temp", "zone", "a").Set(1.5)
			case 3:
				r.HistogramBuckets("lat", 4).Observe(2)
			}
		}
		var buf bytes.Buffer
		if err := r.WriteProm(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 2, 1, 0})
	if a != b {
		t.Fatalf("WriteProm depends on registration order:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	if !strings.Contains(a, `build_info{go="go1.x",revision="abc"} 1`) {
		t.Fatalf("build_info series missing:\n%s", a)
	}
}

// TestEmptyHistogramNoNaN pins the empty-histogram contract end to end:
// quantiles are 0 (never NaN), and neither the JSON snapshot nor the
// Prometheus exposition of an observation-free histogram contains NaN.
func TestEmptyHistogramNoNaN(t *testing.T) {
	h := NewHistogram(8)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram q=%g → %g, want 0", q, got)
		}
	}
	snap := h.Snapshot()
	if snap.P50 != 0 || snap.P95 != 0 || snap.P99 != 0 {
		t.Fatalf("empty snapshot quantiles = %g/%g/%g", snap.P50, snap.P95, snap.P99)
	}

	r := NewRegistry()
	r.Histogram("lat") // registered, never observed
	var jsonBuf bytes.Buffer
	if err := r.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(jsonBuf.String(), "NaN") {
		t.Fatalf("JSON dump contains NaN:\n%s", jsonBuf.String())
	}
	var parsed map[string]any
	if err := json.Unmarshal(jsonBuf.Bytes(), &parsed); err != nil {
		t.Fatalf("JSON dump is not valid JSON: %v", err)
	}
	var promBuf bytes.Buffer
	if err := r.WriteProm(&promBuf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(promBuf.String(), "NaN") {
		t.Fatalf("Prom exposition contains NaN:\n%s", promBuf.String())
	}
}

// TestQuantileEdgeSemantics pins the documented q clamping: NaN and
// negative q read as 0, q past 1 reads as 1.
func TestQuantileEdgeSemantics(t *testing.T) {
	h := NewHistogram(8)
	h.Observe(2)
	h.Observe(100)
	lo := h.Quantile(0)
	hi := h.Quantile(1)
	if got := h.Quantile(math.NaN()); got != lo {
		t.Fatalf("q=NaN → %g, want %g (reads as 0)", got, lo)
	}
	if got := h.Quantile(-3); got != lo {
		t.Fatalf("q=-3 → %g, want %g", got, lo)
	}
	if got := h.Quantile(7); got != hi {
		t.Fatalf("q=7 → %g, want %g", got, hi)
	}
	if math.IsNaN(lo) || math.IsNaN(hi) {
		t.Fatalf("edge quantiles are NaN: %g, %g", lo, hi)
	}
}
