package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LintProm validates a Prometheus text exposition (0.0.4 plus the
// OpenMetrics exemplar suffix this package emits): metric and label
// names must be legal, label values must be properly quoted and
// escaped, no series may appear twice, every value must parse, and
// exemplar suffixes must themselves be well-formed label sets followed
// by a value. It returns one message per problem (nil = clean). This is
// the lint CI runs against live /metrics.prom scrapes — no external
// Prometheus toolchain required.
func LintProm(r io.Reader) []string {
	var problems []string
	seen := make(map[string]int)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if p := lintPromComment(line); p != "" {
				problems = append(problems, fmt.Sprintf("line %d: %s", lineNo, p))
			}
			continue
		}
		series, rest, p := lintPromSeries(line)
		if p != "" {
			problems = append(problems, fmt.Sprintf("line %d: %s", lineNo, p))
			continue
		}
		if prev, dup := seen[series]; dup {
			problems = append(problems, fmt.Sprintf("line %d: duplicate series %s (first at line %d)", lineNo, series, prev))
		} else {
			seen[series] = lineNo
		}
		if p := lintPromValue(rest); p != "" {
			problems = append(problems, fmt.Sprintf("line %d: %s", lineNo, p))
		}
	}
	if err := sc.Err(); err != nil {
		problems = append(problems, fmt.Sprintf("read: %v", err))
	}
	return problems
}

func lintPromComment(line string) string {
	fields := strings.Fields(line)
	if len(fields) >= 2 && fields[1] == "TYPE" {
		if len(fields) != 4 {
			return fmt.Sprintf("malformed TYPE comment %q", line)
		}
		if !validMetricName(fields[2]) {
			return fmt.Sprintf("TYPE names invalid metric %q", fields[2])
		}
		switch fields[3] {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Sprintf("unknown metric type %q", fields[3])
		}
	}
	return ""
}

// lintPromSeries parses the "name{labels}" prefix of a sample line,
// returning the canonical series identity and the remainder (value +
// optional exemplar).
func lintPromSeries(line string) (series, rest, problem string) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' {
		i++
	}
	name := line[:i]
	if !validMetricName(name) {
		return "", "", fmt.Sprintf("invalid metric name %q", name)
	}
	series = name
	if i < len(line) && line[i] == '{' {
		end, p := lintLabelSet(line, i, false)
		if p != "" {
			return "", "", p
		}
		series = line[:end]
		i = end
	}
	if i >= len(line) || line[i] != ' ' {
		return "", "", fmt.Sprintf("missing value after series %q", series)
	}
	return series, line[i+1:], ""
}

// lintLabelSet validates a {k="v",...} block starting at the '{' at
// line[start], returning the index just past the closing '}'. Empty
// label names are tolerated only in exemplars ({}), matching
// OpenMetrics.
func lintLabelSet(line string, start int, allowEmpty bool) (end int, problem string) {
	i := start + 1
	first := true
	for {
		if i >= len(line) {
			return 0, "unterminated label set"
		}
		if line[i] == '}' {
			if first && !allowEmpty {
				return 0, "empty label set"
			}
			return i + 1, ""
		}
		if !first {
			if line[i] != ',' {
				return 0, fmt.Sprintf("expected ',' in label set at byte %d", i)
			}
			i++
		}
		j := i
		for j < len(line) && line[j] != '=' {
			j++
		}
		if j >= len(line) {
			return 0, "label without '='"
		}
		labelName := line[i:j]
		if !validLabelName(labelName) {
			return 0, fmt.Sprintf("invalid label name %q", labelName)
		}
		i = j + 1
		if i >= len(line) || line[i] != '"' {
			return 0, fmt.Sprintf("unquoted value for label %q", labelName)
		}
		// Scan the quoted value honouring backslash escapes.
		i++
		for {
			if i >= len(line) {
				return 0, "unterminated label value"
			}
			if line[i] == '\\' {
				if i+1 >= len(line) {
					return 0, "dangling escape in label value"
				}
				switch line[i+1] {
				case '\\', '"', 'n':
				default:
					return 0, fmt.Sprintf("invalid escape \\%c in label value", line[i+1])
				}
				i += 2
				continue
			}
			if line[i] == '"' {
				i++
				break
			}
			i++
		}
		first = false
	}
}

// lintPromValue validates "value" or "value # {labels} exemplarValue".
func lintPromValue(rest string) string {
	val := rest
	exemplar := ""
	if idx := strings.Index(rest, " # "); idx >= 0 {
		val = rest[:idx]
		exemplar = rest[idx+3:]
	}
	if !validPromFloat(val) {
		return fmt.Sprintf("invalid sample value %q", val)
	}
	if exemplar == "" {
		return ""
	}
	if !strings.HasPrefix(exemplar, "{") {
		return fmt.Sprintf("exemplar must start with '{': %q", exemplar)
	}
	end, p := lintLabelSet(exemplar, 0, true)
	if p != "" {
		return "exemplar: " + p
	}
	tail := strings.TrimPrefix(exemplar[end:], " ")
	// Exemplar value, optionally followed by a timestamp.
	fields := strings.Fields(tail)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Sprintf("exemplar needs a value: %q", exemplar)
	}
	for _, f := range fields {
		if !validPromFloat(f) {
			return fmt.Sprintf("invalid exemplar value %q", f)
		}
	}
	return ""
}

func validPromFloat(s string) bool {
	switch s {
	case "+Inf", "-Inf", "NaN":
		return true
	}
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
