package telemetry

import (
	"fmt"
	"io"
	"sync"
)

// Logger is the progress logger behind the pipeline and the CLIs. It is
// quiet unless given an output writer, counts every line into an optional
// registry counter (so even silenced runs leave a record of how chatty
// they were), and a nil *Logger is a valid silent logger — callers never
// nil-check.
type Logger struct {
	mu    sync.Mutex
	out   io.Writer
	fn    func(format string, args ...any)
	lines *Counter
}

// NewLogger returns a logger writing to out (nil out = quiet). When reg
// is non-nil, every Logf call increments log_lines_total in it.
func NewLogger(out io.Writer, reg *Registry) *Logger {
	l := &Logger{out: out}
	if reg != nil {
		l.lines = reg.Counter("log_lines_total")
	}
	return l
}

// NewLoggerFunc returns a logger that forwards format and args verbatim
// to fn (nil fn = quiet) — the adapter for pre-telemetry printf-style
// Logf callbacks, whose callers may inspect the raw format string.
func NewLoggerFunc(fn func(format string, args ...any), reg *Registry) *Logger {
	l := &Logger{fn: fn}
	if reg != nil {
		l.lines = reg.Counter("log_lines_total")
	}
	return l
}

// Logf records one progress line, appending a newline on writer-backed
// loggers. It is safe for concurrent use: both writer- and func-backed
// sinks are serialized by the logger's mutex, so parallel pipeline
// shards can share one logger (and one capture callback) freely.
func (l *Logger) Logf(format string, args ...any) {
	if l == nil {
		return
	}
	if l.lines != nil {
		l.lines.Add(1)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.fn != nil {
		l.fn(format, args...)
		return
	}
	if l.out == nil {
		return
	}
	fmt.Fprintf(l.out, format+"\n", args...)
}

// Func adapts the logger to the func(string, ...any) signature used by
// pre-telemetry option structs. Safe on a nil logger.
func (l *Logger) Func() func(string, ...any) { return l.Logf }
