package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestQuantileEmptyHistogram(t *testing.T) {
	h := NewHistogram(20)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram q=%g → %g, want 0", q, got)
		}
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	h := NewHistogram(20)
	h.Observe(100) // bucket [64, 128)
	for _, q := range []float64{0.01, 0.5, 0.99} {
		got := h.Quantile(q)
		if got < 64 || got > 128 {
			t.Fatalf("q=%g → %g, want within the observation's bucket [64,128)", q, got)
		}
	}
}

func TestQuantileAllInOverflowBucket(t *testing.T) {
	h := NewHistogram(8) // last bucket opens at 2^6 = 64
	for i := 0; i < 100; i++ {
		h.Observe(1 << 20) // far past the last bucket
	}
	lo, hi := BucketBounds(7)
	for _, q := range []float64{0.5, 0.99} {
		if got := h.Quantile(q); got < lo || got > hi {
			t.Fatalf("overflow-only q=%g → %g, want saturation inside [%g,%g]", q, got, lo, hi)
		}
	}
}

func TestQuantileZeroAndNegativeLandInFirstBucket(t *testing.T) {
	h := NewHistogram(8)
	h.Observe(0)
	h.Observe(-5)
	if got := h.Buckets()[0]; got != 2 {
		t.Fatalf("bucket 0 = %d, want 2", got)
	}
	if got := h.Quantile(0.5); got < 0 || got >= 1 {
		t.Fatalf("q=0.5 → %g, want within [0,1)", got)
	}
}

// TestQuantileTracksExactQuantiles cross-checks the histogram estimate
// against exact sample quantiles on a seeded log-normal-ish sample. A
// log-2 histogram's estimate always stays inside the true value's bucket,
// so it can be off by at most 2× in either direction.
func TestQuantileTracksExactQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	h := NewHistogram(DefaultHistBuckets)
	sample := make([]float64, n)
	for i := range sample {
		v := math.Exp(rng.NormFloat64()*1.5 + 6) // median ~e^6 ≈ 403
		sample[i] = v
		h.Observe(int64(v))
	}
	sort.Float64s(sample)
	for _, q := range []float64{0.50, 0.95, 0.99} {
		exact := sample[int(q*float64(n-1))]
		est := h.Quantile(q)
		if est < exact/2 || est > exact*2 {
			t.Fatalf("q=%g: estimate %.1f vs exact %.1f (outside 2× band)", q, est, exact)
		}
	}
}

func TestBucketIndexMatchesBounds(t *testing.T) {
	for _, v := range []int64{1, 2, 3, 4, 7, 8, 1023, 1024} {
		i := BucketIndex(v, 64)
		lo, hi := BucketBounds(i)
		if float64(v) < lo || float64(v) >= hi {
			t.Fatalf("v=%d → bucket %d [%g,%g) does not contain it", v, i, lo, hi)
		}
	}
}
