package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one timestamped structured entry in an EventLog: a named
// state transition (Kind) with an optional free-form reason and an
// arbitrary JSON-friendly detail payload.
type Event struct {
	Time   time.Time      `json:"time"`
	Kind   string         `json:"kind"`
	Reason string         `json:"reason,omitempty"`
	Detail map[string]any `json:"detail,omitempty"`
}

// EventLog is a bounded in-memory ring of structured events — the
// lightweight audit trail behind state machines that must answer "what
// happened and in what order" long after the fact (the adaptation
// controller's shadow/canary/rollback transitions, for one). Unlike the
// metrics registry it keeps *history*, not aggregates; unlike the flight
// recorder it is low-rate and mutex-guarded, trading hot-path cost for
// arbitrary payloads. A nil *EventLog is a valid no-op sink.
type EventLog struct {
	mu      sync.Mutex
	ring    []Event
	pos     int
	n       int
	total   uint64
	counter *Counter
}

// DefaultEventCapacity is the ring size used when a caller passes n <= 0.
const DefaultEventCapacity = 256

// NewEventLog returns a log retaining the last n events (n <= 0 takes
// DefaultEventCapacity). When reg is non-nil, every append increments
// events_total{kind=...} in it.
func NewEventLog(n int, reg *Registry) *EventLog {
	if n <= 0 {
		n = DefaultEventCapacity
	}
	l := &EventLog{ring: make([]Event, n)}
	if reg != nil {
		l.counter = reg.Counter("events_total")
	}
	return l
}

// Append records one event, stamping the time if ev.Time is zero.
func (l *EventLog) Append(ev Event) {
	if l == nil {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	if l.counter != nil {
		l.counter.Add(1)
	}
	l.mu.Lock()
	l.ring[l.pos] = ev
	l.pos = (l.pos + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
	l.total++
	l.mu.Unlock()
}

// Total returns how many events have ever been appended; the ring holds
// the most recent min(Total, capacity) of them.
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Snapshot appends a copy of the retained events to dst, oldest first,
// and returns it.
func (l *EventLog) Snapshot(dst []Event) []Event {
	if l == nil {
		return dst
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	start := l.pos - l.n
	if start < 0 {
		start += len(l.ring)
	}
	for i := 0; i < l.n; i++ {
		dst = append(dst, l.ring[(start+i)%len(l.ring)])
	}
	return dst
}

// WriteJSON writes the retained events as one JSON array, oldest first —
// the payload debug handlers and CI artifacts serve.
func (l *EventLog) WriteJSON(w io.Writer) error {
	evs := l.Snapshot(nil)
	if evs == nil {
		evs = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(evs)
}
