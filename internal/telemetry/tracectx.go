package telemetry

import (
	"fmt"
	"strconv"
	"sync/atomic"
	"time"
)

// TraceContext identifies one distributed trace as it crosses process
// boundaries: a 64-bit trace ID shared by every span of the trace, the
// span ID of the propagating parent (0 at the root), and a flags byte
// whose sampled bit says whether anyone downstream should record spans
// at all. The zero value is "no trace" — it propagates for free and
// every consumer treats it as a no-op, which is what keeps the
// tracing-disabled hot path allocation-free.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
	Flags   uint8
}

// FlagSampled marks a trace chosen by head-based sampling at its root.
// The decision is made exactly once, when the trace is created, and
// every hop honours it — there is no per-hop re-sampling, so a sampled
// trace is complete end to end.
const FlagSampled = 1

// Valid reports whether tc identifies a trace at all.
func (tc TraceContext) Valid() bool { return tc.TraceID != 0 }

// Sampled reports whether spans should be recorded for this trace.
func (tc TraceContext) Sampled() bool { return tc.TraceID != 0 && tc.Flags&FlagSampled != 0 }

// FormatTraceID renders a trace or span ID as the fixed-width lowercase
// hex string used in span JSONL, exemplar labels, and ?trace= queries.
func FormatTraceID(id uint64) string {
	return fmt.Sprintf("%016x", id)
}

// ParseTraceID is the inverse of FormatTraceID (leading zeros optional).
func ParseTraceID(s string) (uint64, error) {
	id, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("telemetry: bad trace id %q: %w", s, err)
	}
	return id, nil
}

// mix64 is the SplitMix64 finalizer: a cheap, well-distributed 64-bit
// mixer used to derive trace and span IDs deterministically.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Sampler makes the head-based sampling decision at a trace's root:
// request n is sampled iff n is a multiple of EveryN, and its trace ID
// is derived deterministically from the sampler's seed and sequence
// number — the same seed yields the same trace IDs on every run, so
// traces can be cross-referenced between repeated experiments. Next is
// one atomic increment; unsampled requests get the zero TraceContext
// and cost nothing downstream. A nil Sampler never samples.
type Sampler struct {
	everyN uint64
	seed   uint64
	seq    atomic.Uint64
}

// NewSampler returns a sampler tracing one request in everyN (<= 0
// disables sampling and returns nil).
func NewSampler(everyN int, seed uint64) *Sampler {
	if everyN <= 0 {
		return nil
	}
	return &Sampler{everyN: uint64(everyN), seed: seed}
}

// Next makes the sampling decision for the next request: a sampled
// TraceContext rooted at this process, or the zero context.
func (s *Sampler) Next() TraceContext {
	if s == nil {
		return TraceContext{}
	}
	n := s.seq.Add(1) - 1
	if n%s.everyN != 0 {
		return TraceContext{}
	}
	id := mix64(s.seed ^ (n + 0x9e3779b97f4a7c15))
	if id == 0 {
		id = 1
	}
	return TraceContext{TraceID: id, Flags: FlagSampled}
}

// spanIDSeed distinguishes span IDs minted by different processes (and
// different tracers within one process) that are part of the same
// trace: each tracer mixes a unique seed into its span IDs, so two
// tracers started from the same binary at the same wall-clock tick
// still cannot collide in practice.
var spanIDCounter atomic.Uint64

func newSpanIDSeed() uint64 {
	return mix64(uint64(time.Now().UnixNano()) ^ spanIDCounter.Add(1)<<32)
}
