// Package runner is the deterministic parallel execution engine behind
// the offline pipeline: datagen suites, preset sweeps, and the Fig. 4 /
// Fig. 3 generators all shard their independent simulation units across
// a bounded worker pool through Map. Shards are claimed in index order,
// results land in a slice indexed by shard, and every shard derives its
// RNG seed from the base seed and shard index alone — never from worker
// identity or scheduling — so output is byte-identical to a serial run
// at any worker count. The first shard error cancels the fleet through
// the context and is returned wrapped with its shard identity.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ssmdvfs/internal/telemetry"
)

// Options configures one Map run.
type Options struct {
	// Name labels the run in spans and metrics ("datagen", "fig4", ...).
	Name string
	// Workers bounds the pool; <= 0 uses runtime.GOMAXPROCS(0). The pool
	// never exceeds the shard count.
	Workers int
	// Seed is the base RNG seed mixed into every Shard.Seed.
	Seed int64
	// Telemetry, when non-nil, receives shard counters, per-shard
	// duration histograms, and per-run worker busy-time (utilization)
	// counters, all labelled runner=Name.
	Telemetry *telemetry.Registry
	// Tracer, when non-nil, records one span per shard on the executing
	// worker's track id — a Chrome-trace view of pool utilization.
	Tracer *telemetry.Tracer
}

// Shard identifies one unit of work handed to a Map function.
type Shard struct {
	// Index is the unit's position in [0, n); results are merged in
	// index order regardless of which worker ran them.
	Index int
	// Seed is a deterministic per-shard RNG seed derived only from
	// Options.Seed and Index, so randomized shards reproduce exactly at
	// any worker count.
	Seed int64
	// Worker is the executing worker's id in [0, workers). It is
	// informational (log prefixes, span tracks) and must not influence
	// shard results.
	Worker int
}

// ShardError wraps a failing shard's error with the shard's identity.
type ShardError struct {
	// Name is the runner label of the failing Map call.
	Name string
	// Index is the failing shard.
	Index int
	// Err is the shard function's error.
	Err error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("%s: shard %d: %v", e.Name, e.Index, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// Map runs fn over n shards on a bounded worker pool and returns the n
// results in shard order. fn must be pure with respect to scheduling:
// given the same Shard.Index (and Seed), it must produce the same value
// no matter which worker runs it or in what order — that is what makes
// parallel output byte-identical to serial output.
//
// The first shard error cancels the context handed to the remaining
// shards, the pool drains, and the error is returned wrapped in a
// *ShardError carrying the lowest failing shard index. A nil result
// slice with a nil error means n was zero.
func Map[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, s Shard) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	name := opts.Name
	if name == "" {
		name = "runner"
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var shardUs *telemetry.Histogram
	if opts.Telemetry != nil {
		opts.Telemetry.Gauge("runner_workers", "runner", name).Set(float64(workers))
		shardUs = opts.Telemetry.Histogram("runner_shard_us", "runner", name)
	}

	results := make([]T, n)
	errs := make([]error, n)
	var next, done atomic.Int64
	var failed atomic.Bool
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			var busy time.Duration
			defer func() {
				if opts.Telemetry != nil {
					opts.Telemetry.Counter("runner_busy_us_total", "runner", name).Add(busy.Microseconds())
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				sp := opts.Tracer.Start(name+":shard", "shard", strconv.Itoa(i))
				sp.SetCat("runner")
				sp.SetTID(worker + 1)
				t0 := time.Now()
				res, err := fn(ctx, Shard{Index: i, Seed: shardSeed(opts.Seed, i), Worker: worker})
				busy += time.Since(t0)
				if shardUs != nil {
					shardUs.Observe(time.Since(t0).Microseconds())
				}
				sp.End()
				done.Add(1)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					cancel()
					return
				}
				results[i] = res
			}
		}(w)
	}
	wg.Wait()

	if opts.Telemetry != nil {
		opts.Telemetry.Counter("runner_shards_total", "runner", name).Add(done.Load())
		opts.Telemetry.Histogram("runner_wall_us", "runner", name).Observe(time.Since(start).Microseconds())
	}
	if failed.Load() {
		for i, err := range errs {
			if err != nil {
				if opts.Telemetry != nil {
					opts.Telemetry.Counter("runner_shard_errors_total", "runner", name).Add(1)
				}
				return nil, &ShardError{Name: name, Index: i, Err: err}
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// shardSeed mixes the base seed and shard index through a splitmix64
// finalizer so neighbouring shards get decorrelated RNG streams.
func shardSeed(base int64, index int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
