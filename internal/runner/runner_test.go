package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"ssmdvfs/internal/telemetry"
)

func TestMapOrderStableAtAnyWorkerCount(t *testing.T) {
	want := make([]int, 64)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{0, 1, 2, 7, 64, 200} {
		got, err := Map(context.Background(), len(want), Options{Name: "t", Workers: workers},
			func(_ context.Context, s Shard) (int, error) {
				return s.Index * s.Index, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapSeedsDeterministicAcrossWorkerCounts(t *testing.T) {
	seeds := func(workers int) []int64 {
		out, err := Map(context.Background(), 32, Options{Workers: workers, Seed: 42},
			func(_ context.Context, s Shard) (int64, error) { return s.Seed, nil })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := seeds(1)
	parallel := seeds(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("shard %d seed differs: %d vs %d", i, serial[i], parallel[i])
		}
	}
	// Distinct shards must get distinct seeds.
	seen := map[int64]int{}
	for i, s := range serial {
		if j, dup := seen[s]; dup {
			t.Fatalf("shards %d and %d share seed %d", j, i, s)
		}
		seen[s] = i
	}
}

func TestMapErrorCarriesShardIdentity(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map(context.Background(), 16, Options{Name: "fleet", Workers: 4},
		func(_ context.Context, s Shard) (int, error) {
			if s.Index == 5 {
				return 0, fmt.Errorf("kernel five: %w", boom)
			}
			return s.Index, nil
		})
	if err == nil {
		t.Fatal("shard error swallowed")
	}
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("error %v is not a *ShardError", err)
	}
	if se.Name != "fleet" || se.Index != 5 {
		t.Fatalf("shard identity lost: %+v", se)
	}
	if !errors.Is(err, boom) {
		t.Fatal("wrapped cause lost")
	}
}

func TestMapFirstErrorStopsFleet(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(context.Background(), 1000, Options{Workers: 2},
		func(ctx context.Context, s Shard) (int, error) {
			ran.Add(1)
			if s.Index == 0 {
				return 0, errors.New("early failure")
			}
			return 0, nil
		})
	if err == nil {
		t.Fatal("error swallowed")
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("fleet ran all %d shards despite early failure", n)
	}
}

func TestMapParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 8, Options{Workers: 2},
		func(_ context.Context, s Shard) (int, error) { return s.Index, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled parent returned %v, want context.Canceled", err)
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(context.Background(), 0, Options{},
		func(_ context.Context, s Shard) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty map returned (%v, %v)", got, err)
	}
}

func TestMapTelemetryAndSpans(t *testing.T) {
	reg := telemetry.NewRegistry()
	var spansBuf bytes.Buffer
	tracer := telemetry.NewTracer(&spansBuf)
	_, err := Map(context.Background(), 10, Options{
		Name: "dg", Workers: 3, Telemetry: reg, Tracer: tracer,
	}, func(_ context.Context, s Shard) (int, error) { return s.Index, nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := tracer.Flush(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if n := snap.Counters[telemetry.MetricID("runner_shards_total", "runner", "dg")]; n != 10 {
		t.Fatalf("runner_shards_total = %d, want 10", n)
	}
	if w := snap.Gauges[telemetry.MetricID("runner_workers", "runner", "dg")]; w != 3 {
		t.Fatalf("runner_workers = %g, want 3", w)
	}
	if h := snap.Histograms[telemetry.MetricID("runner_shard_us", "runner", "dg")]; h.Count != 10 {
		t.Fatalf("runner_shard_us count = %d, want 10", h.Count)
	}
	if h := snap.Histograms[telemetry.MetricID("runner_wall_us", "runner", "dg")]; h.Count != 1 {
		t.Fatalf("runner_wall_us count = %d, want 1", h.Count)
	}

	spans, err := telemetry.ReadSpans(&spansBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 10 {
		t.Fatalf("got %d spans, want 10", len(spans))
	}
	shardSeen := map[string]bool{}
	for _, sp := range spans {
		if sp.Name != "dg:shard" || sp.Cat != "runner" {
			t.Fatalf("unexpected span %+v", sp)
		}
		if sp.TID < 1 || sp.TID > 3 {
			t.Fatalf("span worker track %d out of range [1,3]", sp.TID)
		}
		shardSeen[sp.Attrs["shard"]] = true
	}
	if len(shardSeen) != 10 {
		t.Fatalf("spans cover %d distinct shards, want 10", len(shardSeen))
	}
}
