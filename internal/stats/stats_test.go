package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %g, want 0", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %g, want 2.5", got)
	}
}

func TestGeoMean(t *testing.T) {
	if _, err := GeoMean(nil); err == nil {
		t.Fatal("GeoMean(nil) must error")
	}
	if _, err := GeoMean([]float64{1, 0, 2}); err == nil {
		t.Fatal("GeoMean with zero must error")
	}
	g, err := GeoMean([]float64{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-4) > 1e-12 {
		t.Fatalf("GeoMean(2,8) = %g, want 4", g)
	}
}

func TestGeoMeanLeqMeanProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		v := make([]float64, len(raw))
		for i, r := range raw {
			v[i] = float64(r)/1000 + 0.001
		}
		g, err := GeoMean(v)
		if err != nil {
			return false
		}
		return g <= Mean(v)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}); err != nil {
		t.Fatal(err)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{5, 5, 5}); got != 0 {
		t.Fatalf("StdDev of constant = %g, want 0", got)
	}
	got := StdDev([]float64{1, 3})
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("StdDev(1,3) = %g, want 1", got)
	}
}

func TestMinMax(t *testing.T) {
	if _, _, err := MinMax(nil); err == nil {
		t.Fatal("MinMax(nil) must error")
	}
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil {
		t.Fatal(err)
	}
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = (%g,%g), want (-1,7)", lo, hi)
	}
}

func TestConfusion(t *testing.T) {
	c := NewConfusion(3)
	c.Add(0, 0)
	c.Add(1, 1)
	c.Add(2, 2)
	c.Add(2, 1) // off by one
	c.Add(0, 2) // off by two
	if got := c.At(2, 1); got != 1 {
		t.Fatalf("At(2,1) = %d, want 1", got)
	}
	if got, want := c.Accuracy(), 3.0/5.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Accuracy = %g, want %g", got, want)
	}
	if got, want := c.WithinOne(), 4.0/5.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("WithinOne = %g, want %g", got, want)
	}
}

func TestConfusionEmpty(t *testing.T) {
	c := NewConfusion(4)
	if c.Accuracy() != 0 || c.WithinOne() != 0 {
		t.Fatal("empty confusion must report 0")
	}
}
