// Package stats provides the small statistical utilities the experiment
// harness reports with: means, geometric means, MAPE, and confusion
// matrices.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// GeoMean returns the geometric mean of strictly positive values. It
// returns an error if any value is non-positive.
func GeoMean(v []float64) (float64, error) {
	if len(v) == 0 {
		return 0, fmt.Errorf("stats: geomean of empty slice")
	}
	var logSum float64
	for i, x := range v {
		if x <= 0 {
			return 0, fmt.Errorf("stats: geomean requires positive values, got %g at %d", x, i)
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(v))), nil
}

// StdDev returns the population standard deviation.
func StdDev(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(v)))
}

// MinMax returns the extrema of a non-empty slice.
func MinMax(v []float64) (lo, hi float64, err error) {
	if len(v) == 0 {
		return 0, 0, fmt.Errorf("stats: minmax of empty slice")
	}
	lo, hi = v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Confusion is a square classification confusion matrix; rows are true
// labels, columns predictions.
type Confusion struct {
	N     int
	Cells []int
}

// NewConfusion creates an n-class confusion matrix.
func NewConfusion(n int) *Confusion {
	return &Confusion{N: n, Cells: make([]int, n*n)}
}

// Add records one (true, predicted) observation.
func (c *Confusion) Add(truth, pred int) {
	c.Cells[truth*c.N+pred]++
}

// At returns the count at (truth, pred).
func (c *Confusion) At(truth, pred int) int { return c.Cells[truth*c.N+pred] }

// Accuracy returns the trace fraction.
func (c *Confusion) Accuracy() float64 {
	total, hit := 0, 0
	for t := 0; t < c.N; t++ {
		for p := 0; p < c.N; p++ {
			total += c.At(t, p)
			if t == p {
				hit += c.At(t, p)
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// WithinOne returns the fraction of observations predicted within ±1
// class of the truth — a natural tolerance for ordered DVFS levels.
func (c *Confusion) WithinOne() float64 {
	total, hit := 0, 0
	for t := 0; t < c.N; t++ {
		for p := 0; p < c.N; p++ {
			n := c.At(t, p)
			total += n
			if p >= t-1 && p <= t+1 {
				hit += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}
