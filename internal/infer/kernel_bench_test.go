package infer

import (
	"fmt"
	"math/rand"
	"testing"

	"ssmdvfs/internal/nn"
)

// BenchmarkForwardBatchKernel isolates the two backends' batch kernels
// on the deployed decision-head shape (6→12→12→6) so kernel-only
// regressions are visible without engine overhead on top.
func BenchmarkForwardBatchKernel(b *testing.B) {
	m, err := nn.NewMLP([]int{6, 12, 12, 6}, rand.New(rand.NewSource(7)))
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range []Kind{KindFloat64, KindInt8} {
		bk, err := New(m, kind)
		if err != nil {
			b.Fatal(err)
		}
		for _, rows := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("backend=%s/rows=%d", kind, rows), func(b *testing.B) {
				var x nn.Batch
				x.Reset(rows, 6)
				rng := rand.New(rand.NewSource(11))
				for i := range x.Data {
					x.Data[i] = rng.NormFloat64()
				}
				var s Scratch
				bk.ForwardBatch(&x, &s)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bk.ForwardBatch(&x, &s)
				}
			})
		}
	}
}
