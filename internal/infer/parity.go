package infer

import (
	"math"
	"math/rand"

	"ssmdvfs/internal/nn"
)

// ParityReport summarizes how closely a backend tracks the float64
// reference on synthetic standardized rows.
type ParityReport struct {
	Rows      int
	Flips     int     // rows where argmax disagrees with the reference
	FlipRate  float64 // Flips / Rows
	MaxRelErr float64 // worst per-row |out - ref| / max(1, max|ref|)
}

// CheckParity runs rows deterministic synthetic inputs (standard-normal,
// matching the standardized features every model head consumes) through
// both the backend and the float64 reference m, via both the single-row
// and batched entry points. It reports the argmax flip rate — the number
// that matters for a decision head — and the worst relative output
// error, which covers regression heads where argmax is meaningless.
// Callers (model load, hot-swap validation) decide the thresholds.
func CheckParity(m *nn.MLP, b Backend, rows int, seed int64) ParityReport {
	rng := rand.New(rand.NewSource(seed))
	var x nn.Batch
	x.Reset(rows, m.InputSize())
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	var s Scratch
	rep := ParityReport{Rows: rows}
	y := b.ForwardBatch(&x, &s)
	var rowScratch Scratch
	for r := 0; r < rows; r++ {
		ref := m.Forward(x.Row(r))
		got := y.Row(r)
		// The batched path must agree with the backend's own single-row
		// path exactly; check the second half of the rows that way so
		// both entry points are exercised under the same report.
		if r >= rows/2 {
			got = b.Forward(x.Row(r), &rowScratch)
		}
		if len(got) != len(ref) {
			rep.Flips = rows
			rep.FlipRate = 1
			rep.MaxRelErr = math.Inf(1)
			return rep
		}
		denom := 1.0
		maxDiff := 0.0
		for k := range ref {
			if a := math.Abs(ref[k]); a > denom {
				denom = a
			}
			if d := math.Abs(got[k] - ref[k]); d > maxDiff || math.IsNaN(d) {
				maxDiff = d
			}
		}
		if rel := maxDiff / denom; rel > rep.MaxRelErr || math.IsNaN(rel) {
			rep.MaxRelErr = rel
		}
		if len(ref) > 1 && nn.Argmax(got) != nn.Argmax(ref) {
			rep.Flips++
		}
	}
	rep.FlipRate = float64(rep.Flips) / float64(rows)
	return rep
}
