package infer

import (
	"fmt"
	"math"

	"ssmdvfs/internal/nn"
)

// qlevels is the symmetric quantization range: int8 minus the asymmetric
// -128, so +x and -x round to equal magnitudes and the accumulator bound
// (127*127*in) stays far inside int32 for any realistic layer width.
const qlevels = 127

// qlayer is one dense layer quantized for serving: weights as int8 with
// one symmetric scale per output channel (a per-layer scale lets one
// large weight anywhere coarsen every other channel's grid — on the
// uncompressed model that alone pushes decision flips past 1%), biases
// kept in float64 and applied at dequantize time.
type qlayer struct {
	in, out int
	qw      []int8    // row-major, qw[o*in+i] ≈ W[o*in+i] / sw[o]
	sw      []float64 // per output channel; 0 for an all-zero (pruned) channel
	b       []float64
}

// int8Scratch holds the quantized-path buffers: per-layer float64
// activation batches plus the current layer's quantized rows and per-row
// scales. hmax carries each row's max activation from one layer's
// fused-ReLU epilogue to the next layer's quantization pass, so hidden
// layers never rescan their input for the dynamic scale.
type int8Scratch struct {
	acts []nn.Batch
	one  nn.Batch // 1-row staging for the single-row Forward
	qx   []int8
	sx   []float64
	hmax []float64
}

type int8Backend struct {
	layers []qlayer
	in     int
	out    int
	params int
}

// newInt8Backend quantizes m layer by layer. Any layer whose weights are
// all zero (scale would be zero → all-zero logits forever) or contain a
// non-finite value (scale would be NaN/Inf → NaN logits) is rejected with
// a structured *Error instead of being served silently.
func newInt8Backend(m *nn.MLP) (Backend, error) {
	bk := &int8Backend{
		in:     m.InputSize(),
		out:    m.OutputSize(),
		params: m.Params(),
	}
	for li, l := range m.Layers {
		ql := qlayer{
			in:  l.In,
			out: l.Out,
			qw:  make([]int8, len(l.W)),
			sw:  make([]float64, l.Out),
			b:   make([]float64, len(l.B)),
		}
		copy(ql.b, l.B)
		layerMax := 0.0
		for o := 0; o < l.Out; o++ {
			wo := l.W[o*l.In : (o+1)*l.In]
			maxAbs := 0.0
			for i, w := range wo {
				// NaN loses every > comparison, so it must be caught here
				// explicitly or it would silently quantize to garbage.
				if math.IsNaN(w) || math.IsInf(w, 0) {
					return nil, &Error{Kind: KindInt8, Stage: "quantize", Layer: li,
						Err: fmt.Errorf("non-finite weight %v at index %d", w, o*l.In+i)}
				}
				if a := math.Abs(w); a > maxAbs {
					maxAbs = a
				}
			}
			if maxAbs > layerMax {
				layerMax = maxAbs
			}
			if maxAbs == 0 {
				// A pruned (all-zero) channel: sw=0 and zero codes make its
				// output exactly the bias, matching the float64 path.
				continue
			}
			sw := maxAbs / qlevels
			ql.sw[o] = sw
			for i, w := range wo {
				q := math.Round(w / sw)
				switch {
				case q > qlevels:
					q = qlevels
				case q < -qlevels:
					q = -qlevels
				}
				ql.qw[o*l.In+i] = int8(q)
			}
		}
		if layerMax == 0 {
			return nil, &Error{Kind: KindInt8, Stage: "quantize", Layer: li,
				Err: fmt.Errorf("all-zero weights: scale would be 0 and every logit would quantize to 0")}
		}
		bk.layers = append(bk.layers, ql)
	}
	return bk, nil
}

func (b *int8Backend) Describe() Description {
	return Description{
		Kind:       KindInt8,
		In:         b.in,
		Out:        b.out,
		Layers:     len(b.layers),
		Params:     b.params,
		WeightBits: 8,
	}
}

// Forward runs the single row through the batch kernel via a 1-row
// staging batch: one kernel, one set of numerics, so the row and batch
// paths cannot drift apart.
func (b *int8Backend) Forward(x []float64, s *Scratch) []float64 {
	if len(x) != b.in {
		panic(fmt.Sprintf("infer: int8 Forward with |x|=%d, model wants %d", len(x), b.in))
	}
	s.i8.one.Reset(1, b.in)
	copy(s.i8.one.Data, x)
	return b.ForwardBatch(&s.i8.one, s).Row(0)
}

func (b *int8Backend) ForwardBatch(x *nn.Batch, s *Scratch) *nn.Batch {
	if x.Cols != b.in {
		panic(fmt.Sprintf("infer: int8 ForwardBatch with %d cols, model wants %d", x.Cols, b.in))
	}
	sc := &s.i8
	if len(sc.acts) < len(b.layers) {
		sc.acts = append(sc.acts, make([]nn.Batch, len(b.layers)-len(sc.acts))...)
	}
	h := x
	for li := range b.layers {
		l := &b.layers[li]
		y := &sc.acts[li]
		y.Reset(h.Rows, l.out)
		// Hidden layers (everything but the last) fuse ReLU and record
		// each row's output max, so the next layer's quantization pass
		// reads its dynamic scale from hmax instead of rescanning.
		l.forwardBatch(h, y, sc, li+1 < len(b.layers), li > 0)
		h = y
	}
	return h
}

// forwardBatch quantizes every activation row with its own dynamic scale
// (sx = max|x| / 127), accumulates int8×int8 products in int32, and
// dequantizes with the fused per-(channel,row) factor sw[o]·sx[r] plus
// the float64 bias — applying ReLU in the same pass when fuseReLU is
// set. The row loop is tiled four at a time like the float64 kernel so
// each quantized weight row is loaded once per tile. haveMax means
// sc.hmax already holds each row's max |x| (filled by the previous
// layer's fused-ReLU epilogue), skipping the scan; when fuseReLU is set
// the epilogue refills sc.hmax with this layer's output maxes for the
// next one.
func (l *qlayer) forwardBatch(x, y *nn.Batch, sc *int8Scratch, fuseReLU, haveMax bool) {
	in, out, rows := l.in, l.out, x.Rows
	if n := rows * in; cap(sc.qx) < n {
		sc.qx = make([]int8, n)
	}
	if cap(sc.sx) < rows {
		sc.sx = make([]float64, rows)
		sc.hmax = make([]float64, rows)
	}
	qx := sc.qx[:rows*in]
	sx := sc.sx[:rows]
	hmax := sc.hmax[:rows]

	// Pass 1: per-row dynamic activation quantization. No clamp is
	// needed on the quantized codes: |v| ≤ maxAbs makes |v·inv| at most
	// 127 plus a couple of ulps, far below the 127.5 where the
	// round-half-away would reach ±128.
	for r := 0; r < rows; r++ {
		xr := x.Data[r*in : (r+1)*in : (r+1)*in]
		qr := qx[r*in : (r+1)*in : (r+1)*in]
		maxAbs := 0.0
		if haveMax {
			maxAbs = hmax[r]
		} else {
			for _, v := range xr {
				if a := math.Abs(v); a > maxAbs {
					maxAbs = a
				}
			}
		}
		// An all-zero row (or a non-finite one — upstream validation
		// rejects those before inference) contributes nothing to the
		// accumulator; sx=0 makes the dequantized output exactly the
		// bias, which matches the float64 path on a zero row.
		if !(maxAbs > 0) || math.IsInf(maxAbs, 0) {
			sx[r] = 0
			for i := range qr {
				qr[i] = 0
			}
			continue
		}
		sx[r] = maxAbs / qlevels
		inv := qlevels / maxAbs
		for i, v := range xr {
			// Truncation after ±0.5 is round-half-away-from-zero — the
			// same rounding math.Round implements, minus its pure-Go
			// bit-twiddling cost on the hot path.
			qr[i] = int8(int32(v*inv + math.Copysign(0.5, v)))
		}
	}

	// Pass 2: tiled int32 matmul with fused dequantize(+ReLU) and, for
	// hidden layers, fused next-layer row-max tracking (post-ReLU
	// outputs are nonnegative, so the running max is already max |y|).
	// The [:in] reslices pin every operand's length to the loop bound so
	// the compiler drops the per-element bounds checks in the MAC loop.
	w := l.qw[:out*in]
	sws := l.sw[:out]
	bias := l.b[:out]
	r := 0
	for ; r+4 <= rows; r += 4 {
		q0 := qx[(r+0)*in : (r+1)*in : (r+1)*in][:in]
		q1 := qx[(r+1)*in : (r+2)*in : (r+2)*in][:in]
		q2 := qx[(r+2)*in : (r+3)*in : (r+3)*in][:in]
		q3 := qx[(r+3)*in : (r+4)*in : (r+4)*in][:in]
		y0 := y.Data[(r+0)*out : (r+1)*out : (r+1)*out]
		y1 := y.Data[(r+1)*out : (r+2)*out : (r+2)*out]
		y2 := y.Data[(r+2)*out : (r+3)*out : (r+3)*out]
		y3 := y.Data[(r+3)*out : (r+4)*out : (r+4)*out]
		s0, s1, s2, s3 := sx[r+0], sx[r+1], sx[r+2], sx[r+3]
		var m0, m1, m2, m3 float64
		for o := 0; o < out; o++ {
			wo := w[o*in : o*in+in : o*in+in][:in]
			var a0, a1, a2, a3 int32
			for i := 0; i < in; i++ {
				wv := int32(wo[i])
				a0 += wv * int32(q0[i])
				a1 += wv * int32(q1[i])
				a2 += wv * int32(q2[i])
				a3 += wv * int32(q3[i])
			}
			swo, b := sws[o], bias[o]
			v0 := float64(a0)*(swo*s0) + b
			v1 := float64(a1)*(swo*s1) + b
			v2 := float64(a2)*(swo*s2) + b
			v3 := float64(a3)*(swo*s3) + b
			if fuseReLU {
				if v0 < 0 {
					v0 = 0
				}
				if v1 < 0 {
					v1 = 0
				}
				if v2 < 0 {
					v2 = 0
				}
				if v3 < 0 {
					v3 = 0
				}
				if v0 > m0 {
					m0 = v0
				}
				if v1 > m1 {
					m1 = v1
				}
				if v2 > m2 {
					m2 = v2
				}
				if v3 > m3 {
					m3 = v3
				}
			}
			y0[o], y1[o], y2[o], y3[o] = v0, v1, v2, v3
		}
		if fuseReLU {
			hmax[r+0], hmax[r+1], hmax[r+2], hmax[r+3] = m0, m1, m2, m3
		}
	}
	for ; r < rows; r++ {
		qr := qx[r*in : (r+1)*in : (r+1)*in][:in]
		yr := y.Data[r*out : (r+1)*out : (r+1)*out]
		sr := sx[r]
		var mr float64
		for o := 0; o < out; o++ {
			wo := w[o*in : o*in+in : o*in+in][:in]
			var acc int32
			for i := 0; i < in; i++ {
				acc += int32(wo[i]) * int32(qr[i])
			}
			v := float64(acc)*(sws[o]*sr) + bias[o]
			if fuseReLU {
				if v < 0 {
					v = 0
				}
				if v > mr {
					mr = v
				}
			}
			yr[o] = v
		}
		if fuseReLU {
			hmax[r] = mr
		}
	}
}
