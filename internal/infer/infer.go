// Package infer is the serving-side inference API: every component that
// turns feature rows into logits — core.Inference, serve.Engine, the
// fleet tier's coalesced dispatch, benches — goes through a Backend
// instead of calling nn.MLP methods directly. Two backends exist: the
// float64 reference path (nn.ForwardScratch / nn.ForwardBatch) and an
// int8 path built by per-layer symmetric weight quantization with
// dynamic per-row activation scales, int32 accumulators, and fused
// dequantize+ReLU. Backends are immutable once built and safe for any
// number of concurrent callers; all mutable state lives in the
// per-goroutine Scratch.
package infer

import (
	"fmt"

	"ssmdvfs/internal/nn"
)

// Kind names an inference backend implementation.
type Kind string

const (
	// KindFloat64 is the reference backend: float64 weights and
	// activations, bit-identical to nn.MLP.Forward.
	KindFloat64 Kind = "float64"
	// KindInt8 is the quantized backend: int8 weights (per-layer
	// symmetric scales), int8 activations (per-row dynamic scales),
	// int32 accumulation, float64 dequantize fused with ReLU.
	KindInt8 Kind = "int8"
)

// ParseKind validates a backend name from a flag or model header. The
// empty string means "unspecified" and resolves to the float64 default.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case "", KindFloat64:
		return KindFloat64, nil
	case KindInt8:
		return KindInt8, nil
	}
	return "", &Error{Kind: Kind(s), Stage: "kind", Layer: -1,
		Err: fmt.Errorf("unknown backend %q (want %q or %q)", s, KindFloat64, KindInt8)}
}

// Description reports what a backend serves, for logs, /healthz, and the
// fleet tier's hello negotiation.
type Description struct {
	Kind       Kind
	In, Out    int
	Layers     int
	Params     int
	WeightBits int // 64 for float64, 8 for int8
}

func (d Description) String() string {
	return fmt.Sprintf("%s(%d→%d, %d layers, %d params, w%d)",
		d.Kind, d.In, d.Out, d.Layers, d.Params, d.WeightBits)
}

// Scratch holds every buffer a backend needs: per-layer activations for
// the row and batch paths plus the int8 backend's quantized rows and
// scales. One Scratch serves either backend kind, so a hot-swap between
// kinds reuses the same pooled scratches. A Scratch belongs to one
// goroutine at a time; backends themselves are read-only and shared.
type Scratch struct {
	row   nn.Scratch
	batch nn.BatchScratch
	i8    int8Scratch
}

// Backend runs inference for one network. Forward and ForwardBatch
// return slices/batches aliasing s, valid until the next call with the
// same Scratch. Output row r of ForwardBatch always corresponds to input
// row r, and equals what Forward would produce for that row.
type Backend interface {
	Forward(x []float64, s *Scratch) []float64
	ForwardBatch(x *nn.Batch, s *Scratch) *nn.Batch
	Describe() Description
}

// Error is a structured backend construction/validation failure, in the
// same shape as serve.ReloadError: the failing stage and layer survive
// up the stack so a rejected hot-swap can say exactly what was wrong
// with the artifact.
type Error struct {
	Kind  Kind
	Stage string // "kind", "quantize", "parity"
	Layer int    // layer index, or -1 when not layer-specific
	Err   error
}

func (e *Error) Error() string {
	if e.Layer >= 0 {
		return fmt.Sprintf("infer: backend %s %s (layer %d): %v", e.Kind, e.Stage, e.Layer, e.Err)
	}
	return fmt.Sprintf("infer: backend %s %s: %v", e.Kind, e.Stage, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// New builds a backend of the given kind over m. The float64 kind always
// succeeds; the int8 kind fails with a structured *Error if any layer
// quantizes to a zero or non-finite scale (a corrupt artifact would
// otherwise serve all-zero or NaN logits). m must not be mutated while
// the backend is in use.
func New(m *nn.MLP, kind Kind) (Backend, error) {
	switch kind {
	case "", KindFloat64:
		return &float64Backend{m: m}, nil
	case KindInt8:
		return newInt8Backend(m)
	}
	_, err := ParseKind(string(kind))
	return nil, err
}

// float64Backend is the reference path: thin routing onto the nn
// scratch/batch kernels, bit-identical to nn.MLP.Forward.
type float64Backend struct {
	m *nn.MLP
}

func (b *float64Backend) Forward(x []float64, s *Scratch) []float64 {
	return b.m.ForwardScratch(x, &s.row)
}

func (b *float64Backend) ForwardBatch(x *nn.Batch, s *Scratch) *nn.Batch {
	return b.m.ForwardBatch(x, &s.batch)
}

func (b *float64Backend) Describe() Description {
	return Description{
		Kind:       KindFloat64,
		In:         b.m.InputSize(),
		Out:        b.m.OutputSize(),
		Layers:     len(b.m.Layers),
		Params:     b.m.Params(),
		WeightBits: 64,
	}
}
