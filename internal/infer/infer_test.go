package infer

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"ssmdvfs/internal/nn"
)

func testMLP(t testing.TB, sizes []int, seed int64) *nn.MLP {
	t.Helper()
	m, err := nn.NewMLP(sizes, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
		ok   bool
	}{
		{"", KindFloat64, true},
		{"float64", KindFloat64, true},
		{"int8", KindInt8, true},
		{"float32", "", false},
		{"INT8", "", false},
	} {
		got, err := ParseKind(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseKind(%q) = %q, %v; want %q, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
		if err != nil {
			var ie *Error
			if !errors.As(err, &ie) || ie.Stage != "kind" {
				t.Errorf("ParseKind(%q) error %v is not a stage=kind *Error", tc.in, err)
			}
		}
	}
}

// TestFloat64BackendMatchesMLP pins the float64 backend to nn.Forward bit
// for bit, on both entry points.
func TestFloat64BackendMatchesMLP(t *testing.T) {
	m := testMLP(t, []int{6, 20, 20, 6}, 1)
	b, err := New(m, KindFloat64)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var x nn.Batch
	x.Reset(13, 6)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	var s Scratch
	y := b.ForwardBatch(&x, &s)
	for r := 0; r < x.Rows; r++ {
		want := m.Forward(x.Row(r))
		for k, v := range y.Row(r) {
			if v != want[k] {
				t.Fatalf("batch row %d out %d: %g != %g", r, k, v, want[k])
			}
		}
		got := b.Forward(x.Row(r), &s)
		for k, v := range got {
			if v != want[k] {
				t.Fatalf("row %d out %d: %g != %g", r, k, v, want[k])
			}
		}
	}
	d := b.Describe()
	if d.Kind != KindFloat64 || d.In != 6 || d.Out != 6 || d.WeightBits != 64 || d.Layers != 3 {
		t.Fatalf("Describe() = %+v", d)
	}
}

// TestInt8RowMatchesBatch: the int8 single-row path routes through the
// batch kernel, so the two must agree exactly, and batches must be
// row-order-preserving regardless of tile boundaries.
func TestInt8RowMatchesBatch(t *testing.T) {
	m := testMLP(t, []int{6, 20, 20, 6}, 3)
	b, err := New(m, KindInt8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for _, rows := range []int{1, 3, 4, 5, 8, 17} {
		var x nn.Batch
		x.Reset(rows, 6)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		var s, s2 Scratch
		y := b.ForwardBatch(&x, &s)
		for r := 0; r < rows; r++ {
			want := b.Forward(x.Row(r), &s2)
			for k, v := range y.Row(r) {
				if v != want[k] {
					t.Fatalf("rows=%d row %d out %d: batch %g != row %g", rows, r, k, v, want[k])
				}
			}
		}
	}
}

// TestInt8TracksFloat64 bounds the quantized backend's drift from the
// reference on synthetic standardized rows: the relative logit error
// stays small and the argmax flip rate is well under the serving bound.
func TestInt8TracksFloat64(t *testing.T) {
	m := testMLP(t, []int{6, 20, 20, 6}, 5)
	b, err := New(m, KindInt8)
	if err != nil {
		t.Fatal(err)
	}
	rep := CheckParity(m, b, 2048, 6)
	t.Logf("int8 parity: %+v", rep)
	if rep.MaxRelErr > 0.15 {
		t.Fatalf("max relative logit error %.4f, want <= 0.15", rep.MaxRelErr)
	}
	if rep.FlipRate > 0.02 {
		t.Fatalf("argmax flip rate %.4f over %d rows, want <= 0.02", rep.FlipRate, rep.Rows)
	}
	if d := b.Describe(); d.WeightBits != 8 || d.Kind != KindInt8 {
		t.Fatalf("Describe() = %+v", d)
	}
}

// TestInt8RejectsDegenerateScales: a corrupt artifact (all-zero layer,
// NaN weight) must fail backend construction with a structured *Error,
// not serve all-zero or NaN logits.
func TestInt8RejectsDegenerateScales(t *testing.T) {
	zero := testMLP(t, []int{4, 8, 4}, 7)
	for i := range zero.Layers[1].W {
		zero.Layers[1].W[i] = 0
	}
	_, err := New(zero, KindInt8)
	var ie *Error
	if !errors.As(err, &ie) || ie.Stage != "quantize" || ie.Layer != 1 {
		t.Fatalf("all-zero layer: got %v, want stage=quantize layer=1 *Error", err)
	}

	nan := testMLP(t, []int{4, 8, 4}, 8)
	nan.Layers[0].W[3] = math.NaN()
	_, err = New(nan, KindInt8)
	if !errors.As(err, &ie) || ie.Stage != "quantize" || ie.Layer != 0 {
		t.Fatalf("NaN weight: got %v, want stage=quantize layer=0 *Error", err)
	}

	if _, err := New(testMLP(t, []int{4, 8, 4}, 9), Kind("bf16")); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestInt8ZeroRowMatchesBias: an all-zero input row dequantizes to
// exactly the bias path, matching float64 on the same row.
func TestInt8ZeroRowMatchesBias(t *testing.T) {
	m := testMLP(t, []int{6, 12, 6}, 10)
	b, err := New(m, KindInt8)
	if err != nil {
		t.Fatal(err)
	}
	var s Scratch
	zero := make([]float64, 6)
	got := b.Forward(zero, &s)
	want := m.Forward(zero)
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("zero row out %d: int8 %g != float64 %g", k, got[k], want[k])
		}
	}
}

func TestBackendSteadyStateAllocs(t *testing.T) {
	m := testMLP(t, []int{6, 20, 20, 6}, 11)
	for _, kind := range []Kind{KindFloat64, KindInt8} {
		b, err := New(m, kind)
		if err != nil {
			t.Fatal(err)
		}
		var x nn.Batch
		x.Reset(16, 6)
		for i := range x.Data {
			x.Data[i] = float64(i%7) - 3
		}
		var s Scratch
		row := make([]float64, 6)
		b.ForwardBatch(&x, &s)
		b.Forward(row, &s)
		if allocs := testing.AllocsPerRun(200, func() { b.ForwardBatch(&x, &s) }); allocs > 0 {
			t.Errorf("%s ForwardBatch allocates %.1f objects/op, want 0", kind, allocs)
		}
		if allocs := testing.AllocsPerRun(200, func() { b.Forward(row, &s) }); allocs > 0 {
			t.Errorf("%s Forward allocates %.1f objects/op, want 0", kind, allocs)
		}
	}
}

// TestConcurrentBackendParity hammers both backends from 16 goroutines
// with per-goroutine scratch, asserting bit-identical outputs to a serial
// pass. With -race this proves backends are read-only after construction.
func TestConcurrentBackendParity(t *testing.T) {
	m := testMLP(t, []int{6, 20, 20, 6}, 12)
	rng := rand.New(rand.NewSource(13))
	var x nn.Batch
	x.Reset(37, 6)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for _, kind := range []Kind{KindFloat64, KindInt8} {
		b, err := New(m, kind)
		if err != nil {
			t.Fatal(err)
		}
		var ws Scratch
		ref := b.ForwardBatch(&x, &ws)
		want := make([]float64, len(ref.Data))
		copy(want, ref.Data)

		var wg sync.WaitGroup
		for g := 0; g < 16; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				var s Scratch
				for rep := 0; rep < 8; rep++ {
					if (g+rep)%2 == 0 {
						y := b.ForwardBatch(&x, &s)
						for i, v := range y.Data {
							if v != want[i] {
								t.Errorf("%s goroutine %d batch elem %d: %g != %g", kind, g, i, v, want[i])
								return
							}
						}
					} else {
						for r := 0; r < x.Rows; r++ {
							got := b.Forward(x.Row(r), &s)
							wr := want[r*ref.Cols : (r+1)*ref.Cols]
							for k, v := range got {
								if v != wr[k] {
									t.Errorf("%s goroutine %d row %d out %d: %g != %g", kind, g, r, k, v, wr[k])
									return
								}
							}
						}
					}
				}
			}(g)
		}
		wg.Wait()
	}
}
