package baselines

import (
	"math"
	"testing"

	"ssmdvfs/internal/clockdomain"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/gpusim"
)

// TestRowFallbackMatchesPCSTALLFirstEpoch pins the serving fallback to
// the trusted analytical reference: on a first epoch (no smoothing state
// yet) FallbackDecision over FromStats(stats) must pick exactly the level
// PCSTALL.Decide picks from the raw stats.
func TestRowFallbackMatchesPCSTALLFirstEpoch(t *testing.T) {
	table := clockdomain.TitanX()
	cases := []gpusim.EpochStats{
		{Instructions: 50000, StallCompute: 4000, StallControl: 1000}, // compute-bound
		{Instructions: 5000, StallMemLoad: 60000, StallMemOther: 5000, StallCompute: 100}, // memory-bound
		{Instructions: 20000, StallMemLoad: 15000, StallMemOther: 2000, StallCompute: 8000, StallControl: 500},
		{}, // empty epoch
	}
	for _, preset := range []float64{0.0, 0.05, 0.10, 0.30} {
		for i, stats := range cases {
			ref, err := NewPCSTALL(table, preset, 1)
			if err != nil {
				t.Fatal(err)
			}
			want := ref.Decide(stats)
			got, _ := FallbackDecision(table, counters.FromStats(stats), preset)
			if got != want {
				t.Fatalf("case %d preset %g: fallback level %d, PCSTALL %d", i, preset, got, want)
			}
		}
	}
}

func TestFallbackDecisionSafeOnGarbage(t *testing.T) {
	table := clockdomain.TitanX()
	nanRow := make([]float64, counters.Num)
	for i := range nanRow {
		nanRow[i] = math.NaN()
	}
	checks := []struct {
		name   string
		row    []float64
		preset float64
	}{
		{"nan row", nanRow, 0.10},
		{"nan preset", make([]float64, counters.Num), math.NaN()},
		{"negative preset", make([]float64, counters.Num), -1},
		{"inf preset", make([]float64, counters.Num), math.Inf(1)},
		{"short row", []float64{1, 2}, 0.10},
		{"nil row", nil, 0.10},
	}
	for _, c := range checks {
		level, pred := FallbackDecision(table, c.row, c.preset)
		if level < 0 || level >= table.Len() {
			t.Fatalf("%s: level %d out of range", c.name, level)
		}
		if math.IsNaN(pred) || math.IsInf(pred, 0) || pred < 0 {
			t.Fatalf("%s: predicted instructions %g not finite and non-negative", c.name, pred)
		}
	}
	// A fully-invalid preset must land on the default (fastest) point —
	// the safe side.
	if level, _ := FallbackDecision(table, nanRow, math.NaN()); level != table.Default() {
		t.Fatalf("garbage row+preset picked level %d, want default %d", level, table.Default())
	}
}

func TestRowSensitivityRange(t *testing.T) {
	row := make([]float64, counters.Num)
	row[counters.IdxMH] = 60000
	row[counters.IdxMHNL] = 5000
	row[counters.IdxInstr] = 5000
	s := RowSensitivity(row)
	if s <= 0.5 || s > 1 {
		t.Fatalf("memory-bound sensitivity %g, want in (0.5, 1]", s)
	}
	row[counters.IdxMH], row[counters.IdxMHNL] = 0, 0
	if s := RowSensitivity(row); s != 0 {
		t.Fatalf("compute-bound sensitivity %g, want 0", s)
	}
	table := clockdomain.TitanX()
	allocs := testing.AllocsPerRun(200, func() {
		RowSensitivity(row)
		FallbackDecision(table, row, 0.1)
	})
	if allocs != 0 {
		t.Fatalf("fallback path allocates %.1f per decision, want 0", allocs)
	}
}
