package baselines

import (
	"math"

	"ssmdvfs/internal/clockdomain"
	"ssmdvfs/internal/counters"
)

// This file adapts PCSTALL to the serving path, where no EpochStats exist
// — only the raw 47-counter feature row a client sent. The functions are
// stateless (no cross-epoch smoothing) and allocation-free, so any number
// of serving workers can call them concurrently; they are the guaranteed
// analytical fallback behind the ML decision path: whatever happens to
// the model, a safe operating point can always be computed from the row,
// and for garbage rows the answer degrades to the table's default
// (fastest, zero-performance-loss) point.

// RowSensitivity estimates the epoch's memory-boundedness from a feature
// row, mirroring PCSTALL's counter-based sensitivity: memory-stall issue
// opportunities over all issue opportunities. Non-finite or negative
// inputs yield 0 (fully compute-bound — the conservative end, which
// biases the fallback toward faster operating points).
func RowSensitivity(features []float64) float64 {
	if len(features) < counters.Num {
		return 0
	}
	mem := features[counters.IdxMH] + features[counters.IdxMHNL]
	comp := features[counters.IdxStallCompute] + features[counters.IdxStallControl] + features[counters.IdxInstr]
	if mem < 0 || comp < 0 {
		return 0
	}
	total := mem + comp
	s := mem / total
	// A single comparison rejects NaN (from NaN inputs or 0/0) and keeps
	// the estimate in range; +Inf/+Inf also lands here.
	if !(s > 0 && s <= 1) {
		return 0
	}
	return s
}

// FallbackDecision is the analytical safety net for one serving row: pick
// the slowest level whose predicted performance loss under the PCSTALL
// linear model stays within preset, and estimate the next epoch's
// instruction count at that level. If preset is non-finite or negative
// the table's default (fastest) point is returned — the safe operating
// point that costs energy, never deadlines.
func FallbackDecision(t *clockdomain.Table, features []float64, preset float64) (level int, predInstr float64) {
	level = t.Default()
	if preset >= 0 && !math.IsInf(preset, 0) && preset == preset {
		s := RowSensitivity(features)
		fDefault := t.Point(t.Default()).FrequencyHz
		for l := 0; l < t.Len(); l++ {
			f := t.Point(l).FrequencyHz
			if (1-s)*(fDefault/f)+s-1 <= preset {
				level = l
				break
			}
		}
		predInstr = fallbackPredict(t, features, s, level)
	}
	return level, predInstr
}

// fallbackPredict scales the finished epoch's instruction count by the
// relative speed the sensitivity model predicts for the chosen level: in
// a fixed-length epoch, instructions shrink with effective slowdown.
func fallbackPredict(t *clockdomain.Table, features []float64, s float64, level int) float64 {
	if len(features) < counters.Num {
		return 0
	}
	instr := features[counters.IdxInstr]
	fDefault := t.Point(t.Default()).FrequencyHz
	slowdown := (1-s)*(fDefault/t.Point(level).FrequencyHz) + s
	pred := instr / slowdown
	if !(pred > 0) || math.IsInf(pred, 0) {
		return 0
	}
	return pred
}
