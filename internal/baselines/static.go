// Package baselines implements the comparison mechanisms of Section V:
// PCSTALL, the frequency-sensitivity analytical predictor (Bharadwaj et
// al., ASPLOS'22), and F-LEMMA, the hierarchical actor-critic RL
// framework (Zou et al., MLCAD'20) — both adapted, as in the paper, to
// the common objective of picking the minimum V/f point that keeps
// performance loss under a preset. A trivial static controller pins a
// fixed level and serves as the normalization baseline.
package baselines

import (
	"fmt"

	"ssmdvfs/internal/gpusim"
)

// Static pins every cluster at a fixed operating-point level. With the
// default level it is the paper's normalization baseline.
type Static struct {
	Level int
}

// Name implements gpusim.Controller.
func (s *Static) Name() string { return fmt.Sprintf("static-%d", s.Level) }

// Decide implements gpusim.Controller.
func (s *Static) Decide(gpusim.EpochStats) int { return s.Level }

var _ gpusim.Controller = (*Static)(nil)
