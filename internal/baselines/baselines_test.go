package baselines

import (
	"testing"

	"ssmdvfs/internal/clockdomain"
	"ssmdvfs/internal/gpusim"
)

func computeStats(level int) gpusim.EpochStats {
	return gpusim.EpochStats{
		Cluster:      0,
		Level:        level,
		OP:           clockdomain.TitanX().Point(level),
		Instructions: 20000,
		Cycles:       11000,
		StallCompute: 4000,
		StallMemLoad: 100,
		DynPowerW:    5, StaticPowerW: 2,
	}
}

func memoryStats(level int) gpusim.EpochStats {
	return gpusim.EpochStats{
		Cluster:       0,
		Level:         level,
		OP:            clockdomain.TitanX().Point(level),
		Instructions:  2000,
		Cycles:        11000,
		StallMemLoad:  60000,
		StallMemOther: 8000,
		StallCompute:  500,
		DynPowerW:     2, StaticPowerW: 2,
	}
}

func TestStaticController(t *testing.T) {
	s := &Static{Level: 3}
	if got := s.Decide(computeStats(5)); got != 3 {
		t.Fatalf("static Decide = %d, want 3", got)
	}
	if s.Name() != "static-3" {
		t.Fatalf("Name = %q", s.Name())
	}
}

func TestPCSTALLComputeBoundStaysFast(t *testing.T) {
	tbl := clockdomain.TitanX()
	p, err := NewPCSTALL(tbl, 0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Compute-bound with a tight 5% budget: only levels whose frequency
	// ratio fits may be chosen (1100 MHz is 5.9% slower → too slow).
	lvl := p.Decide(computeStats(5))
	if lvl != tbl.Default() {
		t.Fatalf("compute-bound at 5%% budget chose level %d, want default %d", lvl, tbl.Default())
	}
}

func TestPCSTALLMemoryBoundDropsLow(t *testing.T) {
	tbl := clockdomain.TitanX()
	p, err := NewPCSTALL(tbl, 0.10, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Smoothing = 0
	lvl := p.Decide(memoryStats(5))
	if lvl != 0 {
		t.Fatalf("memory-bound kernel chose level %d, want 0", lvl)
	}
}

func TestPCSTALLBudgetMonotone(t *testing.T) {
	tbl := clockdomain.TitanX()
	prev := tbl.Len()
	for _, preset := range []float64{0.0, 0.05, 0.10, 0.20, 0.40, 0.80} {
		p, err := NewPCSTALL(tbl, preset, 1)
		if err != nil {
			t.Fatal(err)
		}
		p.Smoothing = 0
		lvl := p.Decide(computeStats(5))
		if lvl > prev {
			t.Fatalf("larger budget %g chose faster level %d than %d", preset, lvl, prev)
		}
		prev = lvl
	}
}

func TestPCSTALLSmoothingUsesHistory(t *testing.T) {
	tbl := clockdomain.TitanX()
	p, err := NewPCSTALL(tbl, 0.10, 1)
	if err != nil {
		t.Fatal(err)
	}
	// After many memory-bound epochs, one compute-bound epoch should not
	// immediately snap to the default level thanks to smoothing.
	for i := 0; i < 10; i++ {
		p.Decide(memoryStats(5))
	}
	lvl := p.Decide(computeStats(5))
	if lvl == tbl.Default() {
		t.Fatal("smoothing had no effect: single epoch flipped the decision")
	}
}

func TestPCSTALLValidation(t *testing.T) {
	tbl := clockdomain.TitanX()
	if _, err := NewPCSTALL(nil, 0.1, 1); err == nil {
		t.Fatal("nil table accepted")
	}
	if _, err := NewPCSTALL(tbl, -0.1, 1); err == nil {
		t.Fatal("negative preset accepted")
	}
	if _, err := NewPCSTALL(tbl, 0.1, 0); err == nil {
		t.Fatal("zero clusters accepted")
	}
}

func TestFLEMMADecisionsInRange(t *testing.T) {
	tbl := clockdomain.TitanX()
	f, err := NewFLEMMA(tbl, 0.10, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 200; epoch++ {
		for c := 0; c < 2; c++ {
			s := memoryStats(5)
			s.Cluster = c
			s.Epoch = epoch
			lvl := f.Decide(s)
			if lvl < 0 || lvl >= tbl.Len() {
				t.Fatalf("decision %d out of range", lvl)
			}
		}
	}
	if f.Updates() == 0 {
		t.Fatal("no coarse-grained updates after 200 epochs")
	}
}

func TestFLEMMADeterministicWithSeed(t *testing.T) {
	tbl := clockdomain.TitanX()
	run := func() []int {
		f, err := NewFLEMMA(tbl, 0.10, 1, 7)
		if err != nil {
			t.Fatal(err)
		}
		var decisions []int
		for i := 0; i < 50; i++ {
			decisions = append(decisions, f.Decide(memoryStats(5)))
		}
		return decisions
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestFLEMMAEpsilonDecays(t *testing.T) {
	tbl := clockdomain.TitanX()
	f, err := NewFLEMMA(tbl, 0.10, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	eps0 := f.Epsilon
	for i := 0; i < 100; i++ {
		f.Decide(memoryStats(5))
	}
	if f.Epsilon >= eps0 {
		t.Fatalf("epsilon did not decay: %g -> %g", eps0, f.Epsilon)
	}
}

func TestFLEMMAEventuallyExploitsPowerSavings(t *testing.T) {
	// Feed a stationary memory-bound workload where lower levels always
	// yield better reward; after warm-up, greedy decisions should prefer
	// low levels at least sometimes.
	tbl := clockdomain.TitanX()
	f, err := NewFLEMMA(tbl, 0.20, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	low := 0
	for i := 0; i < 600; i++ {
		s := memoryStats(5)
		// Reward shaping: lower level → lower power, same instructions.
		s.DynPowerW = 1 + float64(f.prev[0].action)
		lvl := f.Decide(s)
		if i > 400 && lvl <= 2 {
			low++
		}
	}
	if low == 0 {
		t.Fatal("RL never chose a low level on a stationary memory-bound workload")
	}
}

func TestFLEMMAValidation(t *testing.T) {
	tbl := clockdomain.TitanX()
	if _, err := NewFLEMMA(nil, 0.1, 1, 1); err == nil {
		t.Fatal("nil table accepted")
	}
	if _, err := NewFLEMMA(tbl, -1, 1, 1); err == nil {
		t.Fatal("negative preset accepted")
	}
	if _, err := NewFLEMMA(tbl, 0.1, 0, 1); err == nil {
		t.Fatal("zero clusters accepted")
	}
}
