package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"ssmdvfs/internal/clockdomain"
	"ssmdvfs/internal/gpusim"
)

// FLEMMA is the adapted hierarchical reinforcement-learning baseline: a
// linear softmax actor and linear critic over a small counter-derived
// state, updated online with advantage actor-critic. The hierarchy of
// the original — fine-grained per-epoch decisions from the (cheap) linear
// policy, coarse-grained model updates every UpdatePeriod epochs — is
// preserved; the paper's "faster F-LEMMA" adaptation shortens the update
// period so it can track fine-grained DVFS.
//
// The adapted reward follows the paper: a linear combination of
// normalized power savings and an instruction-count term whose baseline
// is reduced by the performance-loss preset so the agent may trade that
// much throughput away.
type FLEMMA struct {
	Preset float64
	Table  *clockdomain.Table

	// UpdatePeriod is how many epochs of experience accumulate between
	// actor-critic updates (the coarse-grained level of the hierarchy).
	UpdatePeriod int
	// Epsilon is the exploration rate, decayed multiplicatively by
	// EpsilonDecay at each update.
	Epsilon      float64
	EpsilonDecay float64
	// LR is the actor/critic learning rate; Lambda weighs the performance
	// penalty against power savings in the reward.
	LR     float64
	Lambda float64

	rng *rand.Rand

	// Linear models: actor logits = actorW · s + actorB per action;
	// critic value = criticW · s + criticB.
	actorW  [][]float64 // [action][stateDim]
	actorB  []float64
	criticW []float64
	criticB float64

	// Per-cluster bookkeeping of the previous decision.
	prev []flemmaPrev
	// Running normalizers (shared across clusters, as in the original's
	// global power manager).
	maxInstr float64
	maxPower float64

	// Experience buffer for the coarse update.
	buf        []flemmaExp
	epochsSeen int
	updates    int
}

type flemmaPrev struct {
	state  []float64
	action int
	valid  bool
}

type flemmaExp struct {
	state  []float64
	action int
	reward float64
}

const flemmaStateDim = 6

// NewFLEMMA builds the RL baseline.
func NewFLEMMA(table *clockdomain.Table, preset float64, clusters int, seed int64) (*FLEMMA, error) {
	if table == nil {
		return nil, fmt.Errorf("baselines: nil operating-point table")
	}
	if preset < 0 {
		return nil, fmt.Errorf("baselines: preset must be non-negative, got %g", preset)
	}
	if clusters <= 0 {
		return nil, fmt.Errorf("baselines: clusters must be positive, got %d", clusters)
	}
	f := &FLEMMA{
		Preset:       preset,
		Table:        table,
		UpdatePeriod: 4,
		Epsilon:      0.5,
		EpsilonDecay: 0.9,
		LR:           0.05,
		Lambda:       4.0,
		rng:          rand.New(rand.NewSource(seed)),
		actorB:       make([]float64, table.Len()),
		criticW:      make([]float64, flemmaStateDim),
		prev:         make([]flemmaPrev, clusters),
		maxInstr:     1,
		maxPower:     1,
	}
	f.actorW = make([][]float64, table.Len())
	for a := range f.actorW {
		f.actorW[a] = make([]float64, flemmaStateDim)
		for i := range f.actorW[a] {
			f.actorW[a][i] = (f.rng.Float64() - 0.5) * 0.1
		}
	}
	// Bias the initial policy toward the default (fastest) level so the
	// cold-start policy is safe rather than random-slow.
	f.actorB[table.Default()] = 1.0
	return f, nil
}

// Name implements gpusim.Controller.
func (f *FLEMMA) Name() string { return "flemma" }

// Updates returns how many coarse-grained model updates have happened.
func (f *FLEMMA) Updates() int { return f.updates }

// state builds the normalized observation vector.
func (f *FLEMMA) state(stats gpusim.EpochStats) []float64 {
	instr := float64(stats.Instructions)
	if instr > f.maxInstr {
		f.maxInstr = instr
	}
	p := stats.PowerW()
	if p > f.maxPower {
		f.maxPower = p
	}
	memFrac := sensitivity(stats)
	return []float64{
		instr / f.maxInstr,
		p / f.maxPower,
		memFrac,
		stats.IPC() / 2.0,
		float64(stats.Level) / float64(f.Table.Len()-1),
		1.0, // bias-like constant input
	}
}

// reward implements the adapted objective: reward power savings relative
// to the fastest point, and penalize instruction throughput only below
// the preset-reduced baseline.
func (f *FLEMMA) reward(stats gpusim.EpochStats) float64 {
	powerNorm := stats.PowerW() / f.maxPower
	instrNorm := float64(stats.Instructions) / f.maxInstr
	target := 1 - f.Preset // baseline reduced to allow the preset loss
	perfPenalty := 0.0
	if instrNorm < target {
		perfPenalty = (target - instrNorm) / target
	}
	return (1 - powerNorm) - f.Lambda*perfPenalty
}

func (f *FLEMMA) logits(state []float64) []float64 {
	out := make([]float64, len(f.actorW))
	for a, w := range f.actorW {
		sum := f.actorB[a]
		for i, s := range state {
			sum += w[i] * s
		}
		out[a] = sum
	}
	return out
}

func softmaxInPlace(v []float64) {
	maxV := math.Inf(-1)
	for _, x := range v {
		if x > maxV {
			maxV = x
		}
	}
	var sum float64
	for i, x := range v {
		v[i] = math.Exp(x - maxV)
		sum += v[i]
	}
	for i := range v {
		v[i] /= sum
	}
}

func (f *FLEMMA) value(state []float64) float64 {
	v := f.criticB
	for i, s := range state {
		v += f.criticW[i] * s
	}
	return v
}

// Decide implements gpusim.Controller: credit the previous action with
// the epoch's reward, maybe run a coarse update, then act.
func (f *FLEMMA) Decide(stats gpusim.EpochStats) int {
	c := stats.Cluster
	st := f.state(stats)

	if f.prev[c].valid {
		f.buf = append(f.buf, flemmaExp{
			state:  f.prev[c].state,
			action: f.prev[c].action,
			reward: f.reward(stats),
		})
	}

	f.epochsSeen++
	if f.epochsSeen%(f.UpdatePeriod*len(f.prev)) == 0 && len(f.buf) > 0 {
		f.update()
	}

	var action int
	if f.rng.Float64() < f.Epsilon {
		action = f.rng.Intn(f.Table.Len())
	} else {
		probs := f.logits(st)
		softmaxInPlace(probs)
		action = argmaxF(probs)
	}
	f.prev[c] = flemmaPrev{state: st, action: action, valid: true}
	return action
}

func argmaxF(v []float64) int {
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] > v[best] {
			best = i
		}
	}
	return best
}

// update performs one advantage actor-critic step over the buffered
// experience (the coarse-grained half of the hierarchy).
func (f *FLEMMA) update() {
	for _, e := range f.buf {
		v := f.value(e.state)
		adv := e.reward - v

		// Critic: move value toward reward.
		for i, s := range e.state {
			f.criticW[i] += f.LR * adv * s
		}
		f.criticB += f.LR * adv

		// Actor: policy-gradient step on the softmax policy.
		probs := f.logits(e.state)
		softmaxInPlace(probs)
		for a := range f.actorW {
			indicator := 0.0
			if a == e.action {
				indicator = 1.0
			}
			g := f.LR * adv * (indicator - probs[a])
			for i, s := range e.state {
				f.actorW[a][i] += g * s
			}
			f.actorB[a] += g
		}
	}
	f.buf = f.buf[:0]
	f.Epsilon *= f.EpsilonDecay
	f.updates++
}

var _ gpusim.Controller = (*FLEMMA)(nil)
