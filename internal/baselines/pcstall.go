package baselines

import (
	"fmt"

	"ssmdvfs/internal/clockdomain"
	"ssmdvfs/internal/gpusim"
)

// PCSTALL is the adapted analytical baseline. The original mechanism
// exploits the linear additivity of frequency-sensitivity metrics: epoch
// time decomposes into a compute component that scales with 1/f and a
// memory component that does not,
//
//	T(f) ≈ T0 · [ (1 − s) · f0/f + s ]
//
// where s, the stall-derived memory-boundedness, is estimated from
// performance counters and smoothed over epochs to exploit GPGPU
// iterative behaviour. As in the paper's adaptation, the objective is
// changed from EDP minimization to choosing the minimum frequency whose
// predicted performance loss stays under the preset.
type PCSTALL struct {
	// Preset is the maximum acceptable performance loss.
	Preset float64
	// Smoothing is the EWMA coefficient applied to the sensitivity
	// estimate across epochs (0 disables smoothing).
	Smoothing float64
	// Table is the operating-point table.
	Table *clockdomain.Table

	// memFrac is the smoothed memory-boundedness per cluster.
	memFrac []float64
	seen    []bool
}

// NewPCSTALL builds the controller for a GPU with the given cluster
// count.
func NewPCSTALL(table *clockdomain.Table, preset float64, clusters int) (*PCSTALL, error) {
	if table == nil {
		return nil, fmt.Errorf("baselines: nil operating-point table")
	}
	if preset < 0 {
		return nil, fmt.Errorf("baselines: preset must be non-negative, got %g", preset)
	}
	if clusters <= 0 {
		return nil, fmt.Errorf("baselines: clusters must be positive, got %d", clusters)
	}
	return &PCSTALL{
		Preset:    preset,
		Smoothing: 0.5,
		Table:     table,
		memFrac:   make([]float64, clusters),
		seen:      make([]bool, clusters),
	}, nil
}

// Name implements gpusim.Controller.
func (p *PCSTALL) Name() string { return "pcstall" }

// sensitivity estimates the epoch's memory-boundedness: the fraction of
// issue opportunities lost to memory rather than to frequency-scalable
// compute.
func sensitivity(stats gpusim.EpochStats) float64 {
	mem := float64(stats.StallMemLoad + stats.StallMemOther)
	comp := float64(stats.StallCompute+stats.StallControl) + float64(stats.Instructions)
	total := mem + comp
	if total <= 0 {
		return 0
	}
	return mem / total
}

// Decide implements gpusim.Controller: predict the loss at every level
// from the sensitivity model and pick the slowest level under the preset.
func (p *PCSTALL) Decide(stats gpusim.EpochStats) int {
	s := sensitivity(stats)
	c := stats.Cluster
	if p.seen[c] && p.Smoothing > 0 {
		s = p.Smoothing*p.memFrac[c] + (1-p.Smoothing)*s
	}
	p.memFrac[c] = s
	p.seen[c] = true

	fDefault := p.Table.Point(p.Table.Default()).FrequencyHz
	for level := 0; level < p.Table.Len(); level++ {
		f := p.Table.Point(level).FrequencyHz
		predictedLoss := (1-s)*(fDefault/f) + s - 1
		if predictedLoss <= p.Preset {
			return level
		}
	}
	return p.Table.Default()
}

var _ gpusim.Controller = (*PCSTALL)(nil)
