package kernels

import (
	"testing"

	"ssmdvfs/internal/isa"
)

func TestSuiteAllValid(t *testing.T) {
	suite := Suite()
	if len(suite) < 20 {
		t.Fatalf("suite has %d kernels, want 20+ (paper uses over 20 benchmarks)", len(suite))
	}
	for _, spec := range suite {
		k := spec.Build(1.0)
		if err := k.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
}

func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Suite() {
		if seen[s.Name] {
			t.Fatalf("duplicate kernel name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestTrainEvalSplit(t *testing.T) {
	train, eval := Training(), Evaluation()
	if len(train) == 0 || len(eval) == 0 {
		t.Fatal("empty split")
	}
	if len(train)+len(eval) != len(Suite()) {
		t.Fatal("split does not partition the suite")
	}
	// The paper keeps >50% of evaluated programs unseen; our held-out set
	// must be large enough to build such a mix.
	if len(eval) < len(train)/2 {
		t.Fatalf("eval set too small: %d vs %d training", len(eval), len(train))
	}
}

func TestBehaviourCoverage(t *testing.T) {
	want := []Behaviour{ComputeBound, MemoryBound, CacheFriendly, Irregular, BranchHeavy, PhaseMixed, DNNLayer}
	have := map[Behaviour]int{}
	for _, s := range Suite() {
		have[s.Behaviour]++
	}
	for _, b := range want {
		if have[b] < 2 {
			t.Errorf("behaviour %s has %d kernels, want >= 2", b, have[b])
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	spec, err := ByName("rodinia.kmeans")
	if err != nil {
		t.Fatal(err)
	}
	a, b := spec.Build(1.0), spec.Build(1.0)
	if len(a.Programs) != len(b.Programs) {
		t.Fatal("non-deterministic program count")
	}
	for i := range a.Programs {
		if len(a.Programs[i].Body) != len(b.Programs[i].Body) {
			t.Fatalf("program %d body length differs", i)
		}
		for j := range a.Programs[i].Body {
			if a.Programs[i].Body[j] != b.Programs[i].Body[j] {
				t.Fatalf("program %d instruction %d differs", i, j)
			}
		}
	}
}

func TestBuildScale(t *testing.T) {
	spec := Suite()[0]
	full := spec.Build(1.0)
	half := spec.Build(0.5)
	if half.Programs[0].Iterations >= full.Programs[0].Iterations {
		t.Fatal("scale did not reduce iterations")
	}
	tiny := spec.Build(0.000001)
	if tiny.Programs[0].Iterations < 1 {
		t.Fatal("scale underflowed to zero iterations")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("no.such.kernel"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestArchetypesHaveExpectedMix(t *testing.T) {
	countOps := func(k isa.Kernel) map[isa.Op]int {
		counts := map[isa.Op]int{}
		for _, p := range k.Programs {
			for _, ins := range p.Body {
				counts[ins.Op]++
			}
		}
		return counts
	}
	for _, s := range Suite() {
		k := s.Build(1.0)
		ops := countOps(k)
		switch s.Behaviour {
		case ComputeBound:
			if ops[isa.OpFAlu] <= ops[isa.OpLoadGlobal]*4 {
				t.Errorf("%s: compute-bound but FALU=%d LDG=%d", s.Name, ops[isa.OpFAlu], ops[isa.OpLoadGlobal])
			}
		case MemoryBound, Irregular:
			if ops[isa.OpLoadGlobal]+ops[isa.OpStoreGlobal] == 0 {
				t.Errorf("%s: memory kernel without global accesses", s.Name)
			}
		case BranchHeavy:
			if ops[isa.OpBranch] == 0 {
				t.Errorf("%s: branch-heavy without branches", s.Name)
			}
		case DNNLayer:
			// Every layer type must be present: conv FALU, pool/fc global
			// traffic, softmax SFU.
			if ops[isa.OpFAlu] == 0 || ops[isa.OpSFU] == 0 ||
				ops[isa.OpLoadGlobal] == 0 || ops[isa.OpStoreGlobal] == 0 {
				t.Errorf("%s: dnn kernel missing a layer phase: %v", s.Name, ops)
			}
		}
	}
}
