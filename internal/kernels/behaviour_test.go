package kernels

import (
	"testing"

	"ssmdvfs/internal/gpusim"
)

// TestBehaviourFrequencySensitivity is the suite's integration contract:
// each archetype must exhibit the frequency sensitivity its name
// promises when actually simulated. Compute-bound kernels slow roughly
// with the frequency ratio; memory-bound and irregular kernels barely
// notice. This is the property every DVFS mechanism in the project
// exploits, so the suite must deliver it.
func TestBehaviourFrequencySensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := gpusim.SmallConfig()
	cfg.Clusters = 2

	// One representative per archetype keeps the test fast.
	reps := map[Behaviour]string{
		ComputeBound:  "polybench.gemm",
		MemoryBound:   "parboil.stencil",
		Irregular:     "parboil.spmv",
		CacheFriendly: "rodinia.hotspot",
	}
	fRatio := cfg.OPs.Point(cfg.OPs.Default()).FrequencyHz / cfg.OPs.Point(0).FrequencyHz

	for behaviour, name := range reps {
		spec, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		k := spec.Build(0.2)
		var times [2]int64
		for i, lvl := range []int{0, cfg.OPs.Default()} {
			sim, err := gpusim.New(cfg, k)
			if err != nil {
				t.Fatal(err)
			}
			sim.ForceLevel(lvl)
			res := sim.Run(5_000_000_000_000)
			if !res.Completed {
				t.Fatalf("%s did not complete", name)
			}
			times[i] = res.ExecTimePs
		}
		slowdown := float64(times[0]) / float64(times[1])
		switch behaviour {
		case ComputeBound, CacheFriendly:
			if slowdown < fRatio*0.85 {
				t.Errorf("%s (%s): slowdown %.2f, want near frequency ratio %.2f",
					name, behaviour, slowdown, fRatio)
			}
		case MemoryBound, Irregular:
			if slowdown > 1.15 {
				t.Errorf("%s (%s): slowdown %.2f, want < 1.15 (frequency insensitive)",
					name, behaviour, slowdown)
			}
		}
	}
}

// TestPhaseKernelAlternates verifies the phase archetype actually swings
// between compute- and memory-dominated epochs, which the calibrator
// ablation depends on.
func TestPhaseKernelAlternates(t *testing.T) {
	assertPhaseSwing(t, "rodinia.backprop")
}

// TestDNNLayerKernelShiftsPhases holds the DNN archetype to the same
// contract: the layer walk (conv → pool → fc → softmax) must move the
// memory-boundedness the counters report, or the online adaptation loop
// has no layer-induced drift to track.
func TestDNNLayerKernelShiftsPhases(t *testing.T) {
	assertPhaseSwing(t, "tango.alexnet")
}

func assertPhaseSwing(t *testing.T, name string) {
	t.Helper()
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cfg := gpusim.SmallConfig()
	cfg.Clusters = 1
	spec, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := gpusim.New(cfg, spec.Build(0.4))
	if err != nil {
		t.Fatal(err)
	}
	// Memory-boundedness as PCSTALL estimates it: memory stalls against
	// everything that advanced or waited on compute. (Stall counts alone
	// are useless here — a saturated compute epoch issues every cycle and
	// records almost no stalls at all.)
	var memFracs []float64
	sim.SetObserver(func(s gpusim.EpochStats) {
		mem := float64(s.StallMemLoad + s.StallMemOther)
		comp := float64(s.StallCompute+s.StallControl) + float64(s.Instructions)
		if mem+comp > 0 {
			memFracs = append(memFracs, mem/(mem+comp))
		}
	})
	if res := sim.Run(5_000_000_000_000); !res.Completed {
		t.Fatal("kernel did not complete")
	}
	if len(memFracs) < 4 {
		t.Skipf("too few epochs (%d) to assess phases", len(memFracs))
	}
	lo, hi := memFracs[0], memFracs[0]
	for _, f := range memFracs {
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if hi-lo < 0.4 {
		t.Errorf("memory-stall fraction swings only %.2f..%.2f; phases too weak", lo, hi)
	}
}
