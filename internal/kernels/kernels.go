// Package kernels provides the synthetic GPU workload suite standing in
// for the Rodinia / Parboil / PolyBench CUDA benchmarks the paper runs
// under GPGPU-Sim. Each kernel is a deterministic trace program named
// after the benchmark whose execution behaviour it models: compute-bound,
// memory-streaming, cache-resident, irregular, branch-heavy, or
// phase-alternating. Controllers only observe performance counters, so
// what the suite must supply is a diverse population of compute/memory
// intensity mixes and temporal phase behaviour — which these generators
// cover while also carrying ground-truth labels real benchmarks lack.
package kernels

import (
	"fmt"
	"math/rand"
	"sort"

	"ssmdvfs/internal/isa"
)

// Behaviour is the coarse archetype of a kernel, used for analysis and in
// tests that check the suite covers the behaviour space.
type Behaviour string

const (
	ComputeBound  Behaviour = "compute"
	MemoryBound   Behaviour = "memory"
	CacheFriendly Behaviour = "cache"
	Irregular     Behaviour = "irregular"
	BranchHeavy   Behaviour = "branch"
	PhaseMixed    Behaviour = "phases"
	// DNNLayer models DNN inference passes whose layers walk the kernel
	// through distinct phases — convolution (dense FALU), pooling
	// (cache-resident reduction), fully-connected (weight streaming), and
	// softmax (SFU) — the layer-by-layer workload shifts the online
	// adaptation loop has to track.
	DNNLayer Behaviour = "dnn"
)

// Spec describes one kernel in the suite.
type Spec struct {
	// Name matches the benchmark the kernel models (e.g. "rodinia.hotspot").
	Name string
	// Behaviour is the kernel's dominant archetype.
	Behaviour Behaviour
	// Training marks kernels whose data may be used to train SSMDVFS; the
	// evaluation set keeps >50% of programs unseen, as in the paper.
	Training bool
	// BaseIterations is calibrated so the kernel runs roughly 300 µs on
	// the full Titan X configuration at the default operating point.
	BaseIterations int
	// Warps is the per-cluster warp count.
	Warps int

	build func(iters int, rng *rand.Rand) []isa.Program
	seed  int64
}

// Build instantiates the kernel with its iteration count scaled by the
// given factor (1.0 reproduces the calibrated ~300 µs program).
func (s Spec) Build(scale float64) isa.Kernel {
	iters := int(float64(s.BaseIterations) * scale)
	if iters < 1 {
		iters = 1
	}
	rng := rand.New(rand.NewSource(s.seed))
	return isa.Kernel{
		Name:            s.Name,
		WarpsPerCluster: s.Warps,
		Programs:        s.build(iters, rng),
	}
}

// --- body-construction helpers -------------------------------------------

// regAlloc hands out registers 1..MaxRegs-1 (register 0 is the zero reg).
type regAlloc struct{ next isa.Reg }

func (a *regAlloc) get() isa.Reg {
	a.next++
	if a.next >= isa.MaxRegs {
		a.next = 1
	}
	if a.next == 0 {
		a.next = 1
	}
	return a.next
}

// computeChain emits n ops of class op spread across k accumulator
// registers (instruction-level parallelism k), each consuming src.
func computeChain(body []isa.Instruction, op isa.Op, n, k int, src isa.Reg, ra *regAlloc) []isa.Instruction {
	if k < 1 {
		k = 1
	}
	accs := make([]isa.Reg, k)
	for i := range accs {
		accs[i] = ra.get()
	}
	for i := 0; i < n; i++ {
		acc := accs[i%k]
		body = append(body, isa.Instruction{Op: op, Dst: acc, SrcA: acc, SrcB: src})
	}
	return body
}

// load emits a global load into dst with the given spec.
func load(dst isa.Reg, mem isa.MemSpec) isa.Instruction {
	return isa.Instruction{Op: isa.OpLoadGlobal, Dst: dst, Mem: mem}
}

// store emits a global store of src with the given spec.
func store(src isa.Reg, mem isa.MemSpec) isa.Instruction {
	return isa.Instruction{Op: isa.OpStoreGlobal, SrcA: src, Mem: mem}
}

const (
	kib = 1024
	mib = 1024 * 1024
)

// streamSpec builds a memory spec for per-warp streaming over a large
// footprint (DRAM bandwidth bound).
func streamSpec(base uint64, footprint uint64, lines int) isa.MemSpec {
	return isa.MemSpec{
		Base:            base,
		FootprintBytes:  footprint,
		StrideBytes:     256,
		WarpStrideBytes: footprint / 512,
		CoalescedLines:  lines,
		Pattern:         isa.PatternSequential,
	}
}

// residentSpec builds a memory spec whose working set fits in L1.
func residentSpec(base uint64, footprint uint64) isa.MemSpec {
	return isa.MemSpec{
		Base:            base,
		FootprintBytes:  footprint,
		StrideBytes:     64,
		WarpStrideBytes: 0,
		CoalescedLines:  1,
		Pattern:         isa.PatternSequential,
	}
}

// randomSpec builds an irregular, scattered access spec.
func randomSpec(base uint64, footprint uint64, lines int) isa.MemSpec {
	return isa.MemSpec{
		Base:           base,
		FootprintBytes: footprint,
		CoalescedLines: lines,
		Pattern:        isa.PatternRandom,
	}
}

// uniformPrograms returns nProgs copies of body variations produced by
// gen, one per program slot (warps share them round-robin).
func uniformPrograms(nProgs, iters int, gen func(slot int) []isa.Instruction) []isa.Program {
	ps := make([]isa.Program, nProgs)
	for i := range ps {
		ps[i] = isa.Program{Body: gen(i), Iterations: iters}
	}
	return ps
}

// --- archetype builders ---------------------------------------------------

// computeKernel: dense FALU with high ILP and an L1-resident feed — SGEMM,
// N-body, Mandelbrot class. Scales almost linearly with core frequency.
func computeKernel(faluPerLoad, ilp int, sfuEvery int) func(int, *rand.Rand) []isa.Program {
	return func(iters int, rng *rand.Rand) []isa.Program {
		return uniformPrograms(4, iters, func(slot int) []isa.Instruction {
			var ra regAlloc
			var body []isa.Instruction
			in := ra.get()
			body = append(body, load(in, residentSpec(0x1000_0000, 8*kib)))
			n := faluPerLoad + rng.Intn(faluPerLoad/4+1)
			body = computeChain(body, isa.OpFAlu, n, ilp, in, &ra)
			if sfuEvery > 0 {
				body = computeChain(body, isa.OpSFU, n/sfuEvery+1, 1, in, &ra)
			}
			body = computeChain(body, isa.OpIAlu, 2, 2, 0, &ra)
			return body
		})
	}
}

// streamKernel: load-compute-store over a DRAM-sized footprint — STREAM,
// SAXPY class. Mostly insensitive to core frequency.
func streamKernel(faluPerElem, lines int, withStore bool) func(int, *rand.Rand) []isa.Program {
	return func(iters int, rng *rand.Rand) []isa.Program {
		return uniformPrograms(4, iters, func(slot int) []isa.Instruction {
			var ra regAlloc
			var body []isa.Instruction
			a := ra.get()
			b := ra.get()
			base := uint64(0x2000_0000 + slot*0x400_0000)
			body = append(body,
				load(a, streamSpec(base, 64*mib, lines)),
				load(b, streamSpec(base+0x800_0000, 64*mib, lines)),
			)
			body = computeChain(body, isa.OpFAlu, faluPerElem, 2, a, &ra)
			if withStore {
				body = append(body, store(b, streamSpec(base+0x1000_0000, 64*mib, lines)))
			}
			body = append(body, isa.Instruction{Op: isa.OpIAlu, Dst: ra.get(), SrcA: a})
			return body
		})
	}
}

// cacheKernel: stencil-style reuse with an L1/L2-resident working set —
// hotspot, stencil2d class. Moderately frequency sensitive.
func cacheKernel(faluPerLoad int, footprint uint64) func(int, *rand.Rand) []isa.Program {
	return func(iters int, rng *rand.Rand) []isa.Program {
		return uniformPrograms(4, iters, func(slot int) []isa.Instruction {
			var ra regAlloc
			var body []isa.Instruction
			for i := 0; i < 3; i++ {
				r := ra.get()
				body = append(body, load(r, residentSpec(uint64(0x3000_0000+slot*0x10_0000), footprint)))
				body = computeChain(body, isa.OpFAlu, faluPerLoad, 2, r, &ra)
			}
			body = append(body, store(1, residentSpec(uint64(0x3800_0000+slot*0x10_0000), footprint)))
			return body
		})
	}
}

// irregularKernel: data-dependent scattered access — SpMV, BFS class.
// Latency bound; very insensitive to core frequency.
func irregularKernel(lines, ialuPerLoad int, withBranch bool) func(int, *rand.Rand) []isa.Program {
	return func(iters int, rng *rand.Rand) []isa.Program {
		return uniformPrograms(4, iters, func(slot int) []isa.Instruction {
			var ra regAlloc
			var body []isa.Instruction
			idx := ra.get()
			val := ra.get()
			base := uint64(0x4000_0000 + slot*0x1000_0000)
			body = append(body, load(idx, randomSpec(base, 256*mib, lines)))
			body = append(body, load(val, randomSpec(base+0x4000_0000, 256*mib, lines)))
			body = computeChain(body, isa.OpIAlu, ialuPerLoad, 2, idx, &ra)
			body = computeChain(body, isa.OpFAlu, 2, 1, val, &ra)
			if withBranch {
				body = append(body, isa.Instruction{Op: isa.OpBranch, SrcA: idx})
			}
			return body
		})
	}
}

// branchKernel: short blocks separated by divergent branches — pathfinder,
// particle-filter class.
func branchKernel(blockLen int) func(int, *rand.Rand) []isa.Program {
	return func(iters int, rng *rand.Rand) []isa.Program {
		return uniformPrograms(4, iters, func(slot int) []isa.Instruction {
			var ra regAlloc
			var body []isa.Instruction
			r := ra.get()
			body = append(body, load(r, residentSpec(0x5000_0000, 16*kib)))
			for b := 0; b < 3; b++ {
				body = computeChain(body, isa.OpIAlu, blockLen, 2, r, &ra)
				body = append(body, isa.Instruction{Op: isa.OpBranch, SrcA: r})
			}
			return body
		})
	}
}

// phaseKernel: alternates a compute-bound phase and a memory-bound phase
// within each program (kmeans, backprop, srad class). The per-iteration
// body contains both phases back to back, long enough that each spans
// multiple 10 µs epochs.
func phaseKernel(computeOps, memLoads, lines int) func(int, *rand.Rand) []isa.Program {
	return func(iters int, rng *rand.Rand) []isa.Program {
		return uniformPrograms(4, iters, func(slot int) []isa.Instruction {
			var ra regAlloc
			var body []isa.Instruction
			r := ra.get()
			body = append(body, load(r, residentSpec(0x6000_0000, 8*kib)))
			body = computeChain(body, isa.OpFAlu, computeOps, 4, r, &ra)
			base := uint64(0x7000_0000 + slot*0x800_0000)
			for m := 0; m < memLoads; m++ {
				mr := ra.get()
				body = append(body, load(mr, streamSpec(base+uint64(m)*0x100_0000, 32*mib, lines)))
				body = computeChain(body, isa.OpFAlu, 2, 1, mr, &ra)
			}
			body = append(body, store(r, streamSpec(base+0x4000_0000, 32*mib, lines)))
			return body
		})
	}
}

// dnnLayerKernel: one DNN inference pass per iteration, layer by layer —
// convolution (L1-resident activations under a dense multiply-accumulate
// chain), pooling (cache-blocked window reductions), fully-connected
// (streaming the weight matrix from DRAM), and softmax (SFU
// exponentials plus a normalization pass). Each layer is long enough to
// span multiple 10 µs epochs, so the counters seen by the controller
// shift phase at every layer boundary (AlexNet/ResNet inference class).
func dnnLayerKernel(convOps, poolLoads, fcLoads, lines int) func(int, *rand.Rand) []isa.Program {
	return func(iters int, rng *rand.Rand) []isa.Program {
		return uniformPrograms(4, iters, func(slot int) []isa.Instruction {
			var ra regAlloc
			var body []isa.Instruction
			// Convolution.
			act := ra.get()
			body = append(body, load(act, residentSpec(0x8000_0000, 8*kib)))
			body = computeChain(body, isa.OpFAlu, convOps, 4, act, &ra)
			// Pooling.
			for p := 0; p < poolLoads; p++ {
				r := ra.get()
				body = append(body, load(r, residentSpec(uint64(0x8800_0000+slot*0x10_0000), 12*kib)))
				body = computeChain(body, isa.OpIAlu, 6, 2, r, &ra)
			}
			// Fully connected: the weight matrix never fits in cache.
			base := uint64(0x9000_0000 + slot*0x800_0000)
			for m := 0; m < fcLoads; m++ {
				w := ra.get()
				body = append(body, load(w, streamSpec(base+uint64(m)*0x100_0000, 32*mib, lines)))
				body = computeChain(body, isa.OpFAlu, 2, 2, w, &ra)
			}
			// Softmax.
			body = computeChain(body, isa.OpSFU, convOps/8+4, 1, act, &ra)
			body = computeChain(body, isa.OpFAlu, 8, 2, act, &ra)
			body = append(body, store(act, streamSpec(base+0x4000_0000, 32*mib, lines)))
			return body
		})
	}
}

// --- the suite -------------------------------------------------------------

// Suite returns the full kernel suite, sorted by name. The split marks 13
// of the 24 kernels as training; evaluation in the experiments package
// uses a mix in which more than half the programs are unseen, as in the
// paper.
func Suite() []Spec {
	specs := []Spec{
		// Compute-bound.
		{Name: "polybench.gemm", Behaviour: ComputeBound, Training: true, Warps: 16, BaseIterations: 1400, seed: 101, build: computeKernel(24, 4, 0)},
		{Name: "polybench.2mm", Behaviour: ComputeBound, Training: true, Warps: 16, BaseIterations: 1350, seed: 102, build: computeKernel(20, 4, 0)},
		{Name: "parboil.sgemm", Behaviour: ComputeBound, Training: false, Warps: 16, BaseIterations: 1400, seed: 103, build: computeKernel(28, 4, 0)},
		{Name: "rodinia.nn", Behaviour: ComputeBound, Training: false, Warps: 12, BaseIterations: 1250, seed: 104, build: computeKernel(16, 2, 6)},
		{Name: "parboil.cutcp", Behaviour: ComputeBound, Training: true, Warps: 16, BaseIterations: 1100, seed: 105, build: computeKernel(18, 3, 4)},
		{Name: "rodinia.lavamd", Behaviour: ComputeBound, Training: false, Warps: 16, BaseIterations: 1000, seed: 106, build: computeKernel(22, 3, 8)},

		// Memory-streaming.
		{Name: "polybench.gesummv", Behaviour: MemoryBound, Training: true, Warps: 16, BaseIterations: 360, seed: 201, build: streamKernel(4, 4, false)},
		{Name: "parboil.stencil", Behaviour: MemoryBound, Training: true, Warps: 16, BaseIterations: 325, seed: 202, build: streamKernel(6, 4, true)},
		{Name: "rodinia.streamcluster", Behaviour: MemoryBound, Training: false, Warps: 16, BaseIterations: 345, seed: 203, build: streamKernel(3, 8, false)},
		{Name: "polybench.atax", Behaviour: MemoryBound, Training: true, Warps: 12, BaseIterations: 375, seed: 204, build: streamKernel(2, 4, true)},
		{Name: "rodinia.cfd", Behaviour: MemoryBound, Training: false, Warps: 16, BaseIterations: 310, seed: 205, build: streamKernel(8, 8, true)},

		// Cache-resident.
		{Name: "rodinia.hotspot", Behaviour: CacheFriendly, Training: true, Warps: 16, BaseIterations: 1280, seed: 301, build: cacheKernel(10, 12*kib)},
		{Name: "polybench.jacobi2d", Behaviour: CacheFriendly, Training: true, Warps: 16, BaseIterations: 1200, seed: 302, build: cacheKernel(8, 10*kib)},
		{Name: "rodinia.lud", Behaviour: CacheFriendly, Training: false, Warps: 12, BaseIterations: 1120, seed: 303, build: cacheKernel(12, 14*kib)},
		{Name: "parboil.sad", Behaviour: CacheFriendly, Training: false, Warps: 16, BaseIterations: 1150, seed: 304, build: cacheKernel(6, 8*kib)},

		// Irregular.
		{Name: "parboil.spmv", Behaviour: Irregular, Training: true, Warps: 16, BaseIterations: 122, seed: 401, build: irregularKernel(16, 4, false)},
		{Name: "rodinia.bfs", Behaviour: Irregular, Training: true, Warps: 16, BaseIterations: 110, seed: 402, build: irregularKernel(24, 3, true)},
		{Name: "rodinia.b+tree", Behaviour: Irregular, Training: false, Warps: 12, BaseIterations: 120, seed: 403, build: irregularKernel(20, 6, true)},
		{Name: "parboil.histo", Behaviour: Irregular, Training: false, Warps: 16, BaseIterations: 125, seed: 404, build: irregularKernel(12, 8, false)},

		// Branch-heavy.
		{Name: "rodinia.pathfinder", Behaviour: BranchHeavy, Training: true, Warps: 16, BaseIterations: 1560, seed: 501, build: branchKernel(8)},
		{Name: "rodinia.particlefilter", Behaviour: BranchHeavy, Training: false, Warps: 12, BaseIterations: 1470, seed: 502, build: branchKernel(6)},

		// Phase-alternating.
		{Name: "rodinia.kmeans", Behaviour: PhaseMixed, Training: true, Warps: 16, BaseIterations: 4, seed: 601, build: phaseKernel(4200, 55, 4)},
		{Name: "rodinia.backprop", Behaviour: PhaseMixed, Training: true, Warps: 16, BaseIterations: 4, seed: 602, build: phaseKernel(3000, 70, 4)},
		{Name: "rodinia.srad", Behaviour: PhaseMixed, Training: false, Warps: 16, BaseIterations: 4, seed: 603, build: phaseKernel(5200, 45, 8)},

		// DNN inference, layer-phase-shifting. All held out: these are the
		// drift workloads the online adaptation loop is evaluated on, so
		// the offline model must never have seen them.
		{Name: "tango.alexnet", Behaviour: DNNLayer, Training: false, Warps: 16, BaseIterations: 4, seed: 701, build: dnnLayerKernel(3600, 6, 48, 4)},
		{Name: "tango.resnet", Behaviour: DNNLayer, Training: false, Warps: 16, BaseIterations: 4, seed: 702, build: dnnLayerKernel(4800, 8, 36, 4)},
		{Name: "tango.squeezenet", Behaviour: DNNLayer, Training: false, Warps: 12, BaseIterations: 4, seed: 703, build: dnnLayerKernel(2800, 4, 56, 8)},
	}
	sort.Slice(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs
}

// Training returns the kernels whose data may be used for training.
func Training() []Spec { return filter(Suite(), func(s Spec) bool { return s.Training }) }

// Evaluation returns the held-out kernels (never used in training).
func Evaluation() []Spec { return filter(Suite(), func(s Spec) bool { return !s.Training }) }

func filter(in []Spec, keep func(Spec) bool) []Spec {
	var out []Spec
	for _, s := range in {
		if keep(s) {
			out = append(out, s)
		}
	}
	return out
}

// ByName returns the spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("kernels: unknown kernel %q", name)
}
