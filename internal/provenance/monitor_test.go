package provenance

import (
	"math"
	"strings"
	"testing"

	"ssmdvfs/internal/telemetry"
)

func modelRecord(cluster, level int, derived []float64) Record {
	rec := Record{Cluster: int32(cluster), Level: int32(level), Reason: ReasonModel}
	rec.SetDerived(derived)
	return rec
}

func TestMonitorPredictionError(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMonitor(reg, MonitorOptions{Window: 4, MAPEThreshold: -1, DriftZThreshold: -1})
	errs := []float64{0.1, -0.2, 0.3, -0.4}
	for _, e := range errs {
		rec := Record{Reason: ReasonModel, PredErr: e, HasPredErr: true}
		m.ObserveRecord(&rec)
	}
	s := m.Stats()
	if s.ErrSamples != 4 {
		t.Fatalf("err samples = %d, want 4", s.ErrSamples)
	}
	if want := (0.1 + 0.2 + 0.3 + 0.4) / 4; math.Abs(s.MAPE-want) > 1e-12 {
		t.Fatalf("MAPE = %g, want %g", s.MAPE, want)
	}
	if want := (0.1 - 0.2 + 0.3 - 0.4) / 4; math.Abs(s.Bias-want) > 1e-12 {
		t.Fatalf("bias = %g, want %g", s.Bias, want)
	}
	// Window rolls: four more samples of 0.5 evict everything.
	for i := 0; i < 4; i++ {
		rec := Record{Reason: ReasonModel, PredErr: 0.5, HasPredErr: true}
		m.ObserveRecord(&rec)
	}
	s = m.Stats()
	if math.Abs(s.MAPE-0.5) > 1e-12 || math.Abs(s.Bias-0.5) > 1e-12 {
		t.Fatalf("rolled window MAPE/bias = %g/%g, want 0.5/0.5", s.MAPE, s.Bias)
	}
	snap := reg.Snapshot()
	if got := snap.Gauges["prov_pred_mape"]; math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("prov_pred_mape gauge = %g, want 0.5", got)
	}
}

func TestMonitorFlipRate(t *testing.T) {
	m := NewMonitor(telemetry.NewRegistry(), MonitorOptions{Window: 8})
	levels := []int{2, 2, 3, 3, 3, 1} // flips at 3 and 1 → 2 flips in 5 transitions
	for _, l := range levels {
		rec := modelRecord(0, l, nil)
		m.ObserveRecord(&rec)
	}
	if got, want := m.Stats().FlipRate, 2.0/5.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("flip rate = %g, want %g", got, want)
	}
	// A second cluster has its own last-level state: its first decision
	// is not a flip.
	rec := modelRecord(1, 5, nil)
	m.ObserveRecord(&rec)
	if got, want := m.Stats().FlipRate, 2.0/5.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("flip rate after new cluster = %g, want %g", got, want)
	}
}

func TestMonitorDriftGaugesAndEvents(t *testing.T) {
	reg := telemetry.NewRegistry()
	var logLines []string
	logger := telemetry.NewLoggerFunc(func(format string, args ...any) {
		logLines = append(logLines, format)
	}, nil)
	m := NewMonitor(reg, MonitorOptions{Window: 8, DriftZThreshold: 2, MAPEThreshold: -1, Logger: logger})
	m.SetTrainingStats([]string{"ipc", "ppc_total_w"}, []float64{2.0, 5.0}, []float64{0.5, 1.0})

	// Feed on-distribution rows: z stays near 0.
	for i := 0; i < 8; i++ {
		rec := modelRecord(0, 1, []float64{2.0, 5.0})
		m.ObserveRecord(&rec)
	}
	snap := reg.Snapshot()
	id := telemetry.MetricID("prov_feature_mean_z", "feature", "ipc")
	if z := snap.Gauges[id]; math.Abs(z) > 1e-9 {
		t.Fatalf("on-distribution z = %g, want 0", z)
	}
	if n := len(logLines); n != 0 {
		t.Fatalf("on-distribution traffic logged %d drift events", n)
	}

	// Shift feature 0 by 4σ: z crosses the threshold once the window
	// fills with shifted rows, and the crossing is logged exactly once.
	for i := 0; i < 8; i++ {
		rec := modelRecord(0, 1, []float64{4.0, 5.0})
		m.ObserveRecord(&rec)
	}
	snap = reg.Snapshot()
	if z := snap.Gauges[id]; math.Abs(z-4.0) > 1e-9 {
		t.Fatalf("shifted z = %g, want 4", z)
	}
	evID := telemetry.MetricID("prov_quality_events_total", "kind", "drift")
	if n := snap.Counters[evID]; n != 1 {
		t.Fatalf("drift events = %d, want 1", n)
	}
	found := false
	for _, l := range logLines {
		if strings.Contains(l, "drifted") {
			found = true
		}
	}
	if !found {
		t.Fatalf("drift crossing was not logged: %q", logLines)
	}
}

func TestMonitorMAPEThresholdEvent(t *testing.T) {
	reg := telemetry.NewRegistry()
	var lines int
	logger := telemetry.NewLoggerFunc(func(string, ...any) { lines++ }, nil)
	m := NewMonitor(reg, MonitorOptions{Window: 4, MAPEThreshold: 0.2, DriftZThreshold: -1, Logger: logger})
	for i := 0; i < 4; i++ {
		rec := Record{Reason: ReasonModel, PredErr: 0.5, HasPredErr: true}
		m.ObserveRecord(&rec)
	}
	evID := telemetry.MetricID("prov_quality_events_total", "kind", "mape")
	if n := reg.Snapshot().Counters[evID]; n != 1 {
		t.Fatalf("mape events = %d, want 1", n)
	}
	if lines != 1 {
		t.Fatalf("logged %d lines, want 1 (the crossing only)", lines)
	}
	// Staying above the threshold must not re-fire the event.
	for i := 0; i < 4; i++ {
		rec := Record{Reason: ReasonModel, PredErr: 0.6, HasPredErr: true}
		m.ObserveRecord(&rec)
	}
	if n := reg.Snapshot().Counters[evID]; n != 1 {
		t.Fatalf("mape events after staying high = %d, want 1", n)
	}
}

func TestMonitorReasonCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewMonitor(reg, MonitorOptions{})
	for _, reason := range []Reason{ReasonModel, ReasonModel, ReasonFallback, ReasonRejected} {
		rec := Record{Reason: reason}
		m.ObserveRecord(&rec)
	}
	snap := reg.Snapshot()
	for reason, want := range map[Reason]int64{ReasonModel: 2, ReasonFallback: 1, ReasonRejected: 1} {
		id := telemetry.MetricID("prov_decisions_total", "reason", reason.String())
		if got := snap.Counters[id]; got != want {
			t.Fatalf("%s = %d, want %d", id, got, want)
		}
	}
}

func TestMonitorNilSafe(t *testing.T) {
	var m *Monitor
	rec := Record{Reason: ReasonModel, HasPredErr: true, PredErr: 0.1}
	m.ObserveRecord(&rec) // must not panic
	m.SetTrainingStats([]string{"x"}, []float64{0}, []float64{1})
	if s := m.Stats(); s != (Stats{}) {
		t.Fatalf("nil monitor stats = %+v, want zero", s)
	}
}

// TestMonitorObserveNoAllocsSteadyState guards the hot-path contract:
// once every cluster has been seen, folding a record allocates nothing.
func TestMonitorObserveNoAllocsSteadyState(t *testing.T) {
	m := NewMonitor(telemetry.NewRegistry(), MonitorOptions{Window: 64})
	m.SetTrainingStats([]string{"a", "b"}, []float64{0, 0}, []float64{1, 1})
	rec := modelRecord(0, 1, []float64{0.5, 0.5})
	rec.HasPredErr = true
	rec.PredErr = 0.05
	m.ObserveRecord(&rec) // warm the cluster map
	allocs := testing.AllocsPerRun(500, func() {
		m.ObserveRecord(&rec)
	})
	if allocs != 0 {
		t.Fatalf("ObserveRecord allocates %.1f objects/op, want 0", allocs)
	}
}

func TestMonitorOnThresholdCallback(t *testing.T) {
	var events []ThresholdEvent
	var m *Monitor
	m = NewMonitor(telemetry.NewRegistry(), MonitorOptions{
		Window: 4, MAPEThreshold: 0.2, DriftZThreshold: 2,
		OnThreshold: func(ev ThresholdEvent) {
			// Re-entering the monitor from the callback must not deadlock.
			_ = m.DriftState()
			events = append(events, ev)
		},
	})
	m.SetTrainingStats([]string{"ipc"}, []float64{2.0}, []float64{0.5})

	// Fill the error window above the MAPE threshold: one "mape" high
	// event on the crossing, none while it stays high.
	for i := 0; i < 8; i++ {
		rec := modelRecord(0, 1, []float64{2.0})
		rec.HasPredErr, rec.PredErr = true, 0.5
		m.ObserveRecord(&rec)
	}
	if len(events) != 1 || events[0].Kind != "mape" || !events[0].High {
		t.Fatalf("after high MAPE window: events = %+v", events)
	}
	if events[0].Value <= events[0].Threshold {
		t.Fatalf("mape event value %g not above threshold %g", events[0].Value, events[0].Threshold)
	}

	// Drift feature 0 by 4σ: one "drift" high event once the feature
	// window refills shifted.
	for i := 0; i < 4; i++ {
		rec := modelRecord(0, 1, []float64{4.0})
		rec.HasPredErr, rec.PredErr = true, 0.5
		m.ObserveRecord(&rec)
	}
	if len(events) != 2 {
		t.Fatalf("after drift: events = %+v", events)
	}
	if ev := events[1]; ev.Kind != "drift" || ev.Feature != "ipc" || !ev.High {
		t.Fatalf("drift event = %+v", ev)
	}

	// Recovery fires the matching low-direction events.
	for i := 0; i < 4; i++ {
		rec := modelRecord(0, 1, []float64{2.0})
		rec.HasPredErr, rec.PredErr = true, 0.01
		m.ObserveRecord(&rec)
	}
	var lows int
	for _, ev := range events[2:] {
		if ev.High {
			t.Fatalf("unexpected high event during recovery: %+v", ev)
		}
		lows++
	}
	if lows != 2 {
		t.Fatalf("recovery fired %d low events, want 2 (mape + drift): %+v", lows, events)
	}
}

func TestMonitorDriftStateLevelTriggered(t *testing.T) {
	m := NewMonitor(telemetry.NewRegistry(), MonitorOptions{Window: 4, MAPEThreshold: 0.2, DriftZThreshold: 2})
	m.SetTrainingStats([]string{"ipc", "ppc_total_w"}, []float64{2.0, 5.0}, []float64{0.5, 1.0})

	if st := m.DriftState(); st.Any() {
		t.Fatalf("fresh monitor reports drift: %+v", st)
	}

	// Partial windows never assert: three high-error, shifted rows.
	for i := 0; i < 3; i++ {
		rec := modelRecord(0, 1, []float64{4.0, 5.0})
		rec.HasPredErr, rec.PredErr = true, 0.5
		m.ObserveRecord(&rec)
	}
	if st := m.DriftState(); st.Any() {
		t.Fatalf("partial window asserted drift: %+v", st)
	}

	// A fourth row fills both windows: now the state is visible to a
	// late-attaching poller, long after the edge events fired.
	rec := modelRecord(0, 1, []float64{4.0, 5.0})
	rec.HasPredErr, rec.PredErr = true, 0.5
	m.ObserveRecord(&rec)
	st := m.DriftState()
	if !st.MAPEHigh || math.Abs(st.MAPE-0.5) > 1e-12 || st.ErrSamples != 4 {
		t.Fatalf("MAPE state = %+v", st)
	}
	if len(st.Drifting) != 1 || st.Drifting[0] != "ipc" {
		t.Fatalf("drifting features = %v", st.Drifting)
	}
	if len(st.DriftZ) != 1 || math.Abs(st.DriftZ[0]-4.0) > 1e-9 {
		t.Fatalf("drift z = %v, want [4]", st.DriftZ)
	}
	if st.WorstFeature != "ipc" || math.Abs(st.WorstZ-4.0) > 1e-9 {
		t.Fatalf("worst = %s z=%g, want ipc z=4", st.WorstFeature, st.WorstZ)
	}
	if !st.Any() {
		t.Fatal("Any() = false with MAPE high and a drifting feature")
	}

	// Recovery deasserts the level.
	for i := 0; i < 4; i++ {
		rec := modelRecord(0, 1, []float64{2.0, 5.0})
		rec.HasPredErr, rec.PredErr = true, 0.01
		m.ObserveRecord(&rec)
	}
	if st := m.DriftState(); st.Any() {
		t.Fatalf("recovered monitor still asserts: %+v", st)
	}

	// Nil monitor is a zero state.
	var nilMon *Monitor
	if st := nilMon.DriftState(); st.Any() {
		t.Fatal("nil monitor asserts drift")
	}
}
