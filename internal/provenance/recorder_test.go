package provenance

import (
	"bytes"
	"math"
	"reflect"
	"sync"
	"testing"

	"ssmdvfs/internal/counters"
)

func testRecord(i int) Record {
	rec := Record{
		Cluster:   int32(i % 4),
		Epoch:     int32(i),
		Level:     int32(i % 6),
		Reason:    Reason(i % NumReasons),
		Preset:    0.10,
		EffPreset: 0.08,
		PredInstr: 1000 + float64(i),
		LatencyNs: int64(100 + i),
		ModelGen:  uint32(i % 3),
	}
	if i%2 == 0 {
		rec.PredErr = 0.01 * float64(i%7)
		rec.HasPredErr = true
	}
	raw := make([]float64, counters.Num)
	for j := range raw {
		raw[j] = float64(i*100 + j)
	}
	rec.SetRaw(raw)
	rec.SetDerived([]float64{float64(i), 2, 3, 4, 5})
	rec.SetLogits([]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6})
	return rec
}

func TestFlightRecorderRoundTrip(t *testing.T) {
	r := NewRecorder(8)
	want := make([]Record, 5)
	for i := range want {
		rec := testRecord(i)
		r.Record(&rec)
		want[i] = rec // Record assigned Seq
	}
	got := r.Snapshot(nil)
	if len(got) != len(want) {
		t.Fatalf("snapshot has %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
	if r.Head() != 5 || r.Dropped() != 0 {
		t.Fatalf("head=%d dropped=%d, want 5, 0", r.Head(), r.Dropped())
	}
}

func TestFlightRecorderWraps(t *testing.T) {
	const capN = 4
	r := NewRecorder(capN)
	for i := 0; i < 10; i++ {
		rec := testRecord(i)
		r.Record(&rec)
	}
	got := r.Snapshot(nil)
	if len(got) != capN {
		t.Fatalf("snapshot has %d records, want %d", len(got), capN)
	}
	// Oldest first: generations 6..9 → seqs 7..10.
	for i, rec := range got {
		if want := uint64(7 + i); rec.Seq != want {
			t.Fatalf("record %d has seq %d, want %d", i, rec.Seq, want)
		}
		if rec.Epoch != int32(6+i) {
			t.Fatalf("record %d has epoch %d, want %d", i, rec.Epoch, 6+i)
		}
	}
	if r.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", r.Dropped())
	}
}

func TestFlightRecorderNilIsFree(t *testing.T) {
	var r *Recorder
	rec := testRecord(1)
	r.Record(&rec) // must not panic
	if got := r.Snapshot(nil); got != nil {
		t.Fatalf("nil recorder snapshot = %v, want nil", got)
	}
	if r.Cap() != 0 || r.Head() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder reports non-zero state")
	}
}

// TestFlightRecorderRecordNoAllocs guards the zero-allocation contract
// of the hot path: recording into a warm ring must not allocate.
func TestFlightRecorderRecordNoAllocs(t *testing.T) {
	r := NewRecorder(64)
	rec := testRecord(3)
	r.Record(&rec)
	allocs := testing.AllocsPerRun(500, func() {
		r.Record(&rec)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f objects/op, want 0", allocs)
	}
}

// TestFlightRecorderConcurrent hammers the ring with concurrent writers
// while readers snapshot, designed for -race: every record a snapshot
// returns must be internally consistent (the writer-stamped payload).
func TestFlightRecorderConcurrent(t *testing.T) {
	const (
		writers   = 8
		perWriter = 2000
	)
	r := NewRecorder(256)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rec := testRecord(w)
			for i := 0; i < perWriter; i++ {
				// Writer-identifying payload: every field derived from w
				// so a torn record is detectable.
				rec.Cluster = int32(w)
				rec.Epoch = int32(w)
				rec.PredInstr = float64(w)
				r.Record(&rec)
			}
		}(w)
	}
	readerErr := make(chan string, 1)
	var rwg sync.WaitGroup
	for g := 0; g < 2; g++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			var buf []Record
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf = r.Snapshot(buf[:0])
				for _, rec := range buf {
					if rec.Epoch != rec.Cluster || float64(rec.Cluster) != rec.PredInstr {
						select {
						case readerErr <- "snapshot returned a torn record":
						default:
						}
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	select {
	case msg := <-readerErr:
		t.Fatal(msg)
	default:
	}
	if got := r.Head(); got != writers*perWriter {
		t.Fatalf("head = %d, want %d", got, writers*perWriter)
	}
	if got := len(r.Snapshot(nil)); got != r.Cap() {
		t.Fatalf("quiescent snapshot has %d records, want full ring of %d", got, r.Cap())
	}
}

func TestDumpRoundTrip(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 6; i++ {
		rec := testRecord(i)
		if i == 2 {
			rec.Raw[3] = math.NaN() // a rejected row's hostile feature
			rec.Raw[4] = math.Inf(1)
		}
		r.Record(&rec)
	}
	hdr := Header{
		Build:     map[string]string{"go": "test"},
		Features:  []string{"ipc", "ppc_total_w"},
		TrainMean: []float64{1.5, 5.0},
		TrainStd:  []float64{0.2, 1.0},
		Levels:    6,
		Capacity:  r.Cap(),
		Head:      r.Head(),
	}
	var buf bytes.Buffer
	if err := WriteRecords(&buf, hdr, r.Snapshot(nil)); err != nil {
		t.Fatal(err)
	}
	gotHdr, recs, err := ReadRecords(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotHdr.Schema != headerSchema || gotHdr.Levels != 6 || gotHdr.Build["go"] != "test" {
		t.Fatalf("header mismatch: %+v", gotHdr)
	}
	if len(recs) != 6 {
		t.Fatalf("%d records, want 6", len(recs))
	}
	if !math.IsNaN(recs[2].Raw[3]) || !math.IsInf(recs[2].Raw[4], 1) {
		t.Fatal("non-finite features did not survive the dump round trip")
	}
	want := r.Snapshot(nil)
	for i := range recs {
		a, b := recs[i], want[i]
		// NaN breaks DeepEqual; compare the record with the hostile
		// floats zeroed on both sides after checking them above.
		if i == 2 {
			a.Raw[3], b.Raw[3] = 0, 0
			a.Raw[4], b.Raw[4] = 0, 0
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("record %d did not round-trip:\n got %+v\nwant %+v", i, a, b)
		}
	}
	// The dump must be byte-deterministic for identical input.
	var buf2 bytes.Buffer
	if err := WriteRecords(&buf2, hdr, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("WriteRecords is not byte-deterministic")
	}
}

func TestReasonStringRoundTrip(t *testing.T) {
	for i := 0; i < NumReasons; i++ {
		r := Reason(i)
		got, err := ParseReason(r.String())
		if err != nil || got != r {
			t.Fatalf("reason %d: round-trip got %v, %v", i, got, err)
		}
	}
	if _, err := ParseReason("nonsense"); err == nil {
		t.Fatal("ParseReason accepted garbage")
	}
}

// BenchmarkFlightRecorder_Record is the hot-path benchmark CI smoke-runs;
// it also asserts the zero-allocation contract so a regression fails the
// benchmark run itself, not just the separate guard test.
func BenchmarkFlightRecorder_Record(b *testing.B) {
	r := NewRecorder(4096)
	rec := testRecord(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(&rec)
	}
	b.StopTimer()
	if allocs := testing.AllocsPerRun(100, func() { r.Record(&rec) }); allocs != 0 {
		b.Fatalf("Record allocates %.1f objects/op, want 0", allocs)
	}
}
