// Package provenance is the decision-provenance layer: a lock-free
// flight recorder that keeps the last N DVFS decisions — raw counters,
// derived features, classifier logits, chosen level, Calibrator output,
// calibration state, and the degradation reason — and an online
// model-quality monitor that folds every decision (plus the next epoch's
// observed slowdown, where the caller can see it) into rolling-window
// drift statistics exported through the telemetry registry.
//
// The paper's self-calibration loop already compares the Calibrator's
// prediction against each epoch's observed instruction count; this
// package surfaces that comparison so an operator can answer "why did
// cluster 7 drop to level 2?" and "is the deployed model still accurate
// on this workload?" without re-running the experiment.
package provenance

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"ssmdvfs/internal/atomicfile"
	"ssmdvfs/internal/counters"
)

// Reason says which path answered a decision. The values double as the
// wire-protocol reason byte (serve) and the JSONL dump encoding, so they
// must stay stable.
type Reason uint8

const (
	// ReasonModel is the healthy path: the Decision-maker answered.
	ReasonModel Reason = iota
	// ReasonFallback is a model failure answered by the analytical
	// fallback (injected model error or an unspecified failure).
	ReasonFallback
	// ReasonRejected is a NaN/Inf/out-of-range row rejected at the
	// boundary and answered by the fallback.
	ReasonRejected
	// ReasonPanic is a recovered model panic; the unreached rows of the
	// batch degrade to the fallback.
	ReasonPanic
	// ReasonDeadline is a blown per-decision budget.
	ReasonDeadline
	// ReasonFallbackOnly is the health state machine bypassing the model
	// entirely (fallback-only state, non-probe batch).
	ReasonFallbackOnly
	// ReasonHold is a controller that held the cluster's current
	// operating point because the model failed and no fallback is set.
	ReasonHold
	// ReasonShed is a fleet router shedding the row under admission
	// control (queue full, queue deadline passed, or no healthy replica)
	// and answering it with the analytical fallback instead of queuing
	// past the decision deadline.
	ReasonShed
	// ReasonRerouted marks a row the fleet router re-submitted to a
	// different replica after its home shard failed mid-request; the row
	// was still answered (by the new replica's path, or shed).
	ReasonRerouted

	// NumReasons bounds the enum for fixed-size per-reason tables.
	NumReasons = int(ReasonRerouted) + 1
)

var reasonNames = [NumReasons]string{
	"model", "fallback", "rejected", "panic", "deadline", "fallback-only", "hold",
	"shed", "rerouted",
}

func (r Reason) String() string {
	if int(r) < NumReasons {
		return reasonNames[r]
	}
	return "reason(" + strconv.Itoa(int(r)) + ")"
}

// ParseReason is the inverse of Reason.String.
func ParseReason(s string) (Reason, error) {
	for i, n := range reasonNames {
		if n == s {
			return Reason(i), nil
		}
	}
	return 0, fmt.Errorf("provenance: unknown reason %q", s)
}

// MaxAux bounds the derived-feature and logit arrays in a Record: the
// paper's selected feature set is five counters and its V/f tables have
// six levels, so eight leaves headroom without bloating the ring.
const MaxAux = 8

// Record is one decision's full provenance. Fixed-size arrays keep the
// ring-buffer slots flat so recording never allocates; NumRaw, NumDerived
// and NumLogits say how much of each array is meaningful.
type Record struct {
	// Seq is the recorder-assigned monotonic sequence number (1-based);
	// it doubles as the trace ID for one decision.
	Seq uint64
	// Cluster and Epoch locate the decision; serving-path records carry
	// Cluster -1 and Epoch -1 (the wire protocol has no cluster notion).
	Cluster int32
	Epoch   int32
	// Level is the operating level answered; Reason says by which path.
	Level  int32
	Reason Reason
	// Preset is the user's performance-loss preset, EffPreset the
	// self-calibrated preset actually fed to the Decision-maker (equal to
	// Preset on paths without calibration).
	Preset    float64
	EffPreset float64
	// PredInstr is the Calibrator's next-epoch instruction estimate.
	PredInstr float64
	// PredErr is the relative error of the *previous* epoch's prediction
	// against this epoch's observed instruction count, (pred-actual)/pred
	// — the quantity the self-calibration loop acts on. Valid only when
	// HasPredErr is set (the first epoch of a cluster has no prediction).
	PredErr    float64
	HasPredErr bool
	// LatencyNs is how long the decision took end to end.
	LatencyNs int64
	// TraceID links the decision to its distributed trace (0 = the
	// request was not sampled): the same 64-bit ID appears on every span
	// of the request's client → router → replica path and on latency-
	// histogram exemplars, so /debug/decisions?trace= resolves an
	// exemplar straight to this record.
	TraceID uint64
	// ModelGen is the lineage generation of the model that was serving
	// when the decision was recorded (0 = an offline/unversioned model),
	// so an online-adaptation audit can attribute every decision to the
	// exact incumbent, candidate, or rolled-back model that produced it.
	ModelGen uint32

	// Raw is the full per-epoch counter row (counters.Num wide).
	NumRaw int32
	Raw    [counters.Num]float64
	// Derived is the model's selected feature subset, unscaled.
	NumDerived int32
	Derived    [MaxAux]float64
	// Logits is the Decision head's output (one score per level).
	NumLogits int32
	Logits    [MaxAux]float64
}

// SetRaw copies row into the fixed raw-counter array (truncating past
// counters.Num) without allocating.
func (r *Record) SetRaw(row []float64) {
	n := copy(r.Raw[:], row)
	r.NumRaw = int32(n)
}

// RawFeatures returns the populated prefix of the raw counter row —
// the slice replay consumers (ledger accounting, drift audits) feed back
// through the same arithmetic the online path used.
func (r *Record) RawFeatures() []float64 {
	n := r.NumRaw
	if n < 0 {
		n = 0
	}
	if int(n) > len(r.Raw) {
		n = int32(len(r.Raw))
	}
	return r.Raw[:n]
}

// SetDerived copies the selected feature subset (truncating past MaxAux).
func (r *Record) SetDerived(row []float64) {
	n := copy(r.Derived[:], row)
	r.NumDerived = int32(n)
}

// SetLogits copies the decision logits (truncating past MaxAux).
func (r *Record) SetLogits(row []float64) {
	n := copy(r.Logits[:], row)
	r.NumLogits = int32(n)
}

// recWords is the fixed ring-slot size in 8-byte words: the scalar block
// plus the three arrays. Layout (word offsets):
//
//	0      Seq
//	1      Cluster (high 32) | Epoch (low 32)
//	2      Level (high 32) | Reason | HasPredErr | NumRaw | NumDerived | NumLogits (packed bytes)
//	3..6   Preset, EffPreset, PredInstr, PredErr
//	7      LatencyNs
//	8      TraceID
//	9      ModelGen
//	10..   Raw, Derived, Logits
const (
	recScalarWords = 10
	recWords       = recScalarWords + counters.Num + 2*MaxAux
)

// jsonRecord mirrors Record for the JSONL dump, with trimmed arrays and
// the reason rendered as its stable string.
type jsonRecord struct {
	Seq       uint64  `json:"seq"`
	Cluster   int32   `json:"cluster"`
	Epoch     int32   `json:"epoch"`
	Level     int32   `json:"level"`
	Reason    string  `json:"reason"`
	Preset    float64 `json:"preset"`
	EffPreset float64 `json:"eff_preset"`
	PredInstr float64 `json:"pred_instr"`
	// PredErr is a pointer so records without a previous prediction omit
	// the field instead of emitting a meaningless zero.
	PredErr   *float64 `json:"pred_err,omitempty"`
	LatencyNs int64    `json:"latency_ns"`
	// TraceID is the distributed-trace ID in fixed-width hex, omitted
	// for unsampled decisions (so pre-tracing dumps stay byte-identical).
	TraceID string `json:"trace_id,omitempty"`
	// ModelGen is omitted for generation-0 (offline) models, so dumps
	// from daemons without online adaptation stay byte-identical.
	ModelGen uint32 `json:"model_gen,omitempty"`
	Raw      floats `json:"raw,omitempty"`
	Derived  floats `json:"derived,omitempty"`
	Logits   floats `json:"logits,omitempty"`
}

// floats marshals a float slice with non-finite values encoded as the
// strings "NaN", "+Inf", "-Inf" — rejected rows legitimately carry NaN
// features, and a provenance dump must not choke on exactly the records
// it exists to explain.
type floats []float64

func (f floats) MarshalJSON() ([]byte, error) {
	var b bytes.Buffer
	b.WriteByte('[')
	for i, v := range f {
		if i > 0 {
			b.WriteByte(',')
		}
		switch {
		case math.IsNaN(v):
			b.WriteString(`"NaN"`)
		case math.IsInf(v, 1):
			b.WriteString(`"+Inf"`)
		case math.IsInf(v, -1):
			b.WriteString(`"-Inf"`)
		default:
			b.Write(strconv.AppendFloat(nil, v, 'g', -1, 64))
		}
	}
	b.WriteByte(']')
	return b.Bytes(), nil
}

func (f *floats) UnmarshalJSON(data []byte) error {
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	out := make([]float64, len(raw))
	for i, r := range raw {
		var s string
		if err := json.Unmarshal(r, &s); err == nil {
			switch s {
			case "NaN":
				out[i] = math.NaN()
			case "+Inf":
				out[i] = math.Inf(1)
			case "-Inf":
				out[i] = math.Inf(-1)
			default:
				return fmt.Errorf("provenance: bad float string %q", s)
			}
			continue
		}
		if err := json.Unmarshal(r, &out[i]); err != nil {
			return err
		}
	}
	*f = out
	return nil
}

func (r *Record) toJSON() jsonRecord {
	j := jsonRecord{
		Seq:       r.Seq,
		Cluster:   r.Cluster,
		Epoch:     r.Epoch,
		Level:     r.Level,
		Reason:    r.Reason.String(),
		Preset:    r.Preset,
		EffPreset: r.EffPreset,
		PredInstr: r.PredInstr,
		LatencyNs: r.LatencyNs,
		ModelGen:  r.ModelGen,
		Raw:       floats(r.Raw[:r.NumRaw]),
		Derived:   floats(r.Derived[:r.NumDerived]),
		Logits:    floats(r.Logits[:r.NumLogits]),
	}
	if r.HasPredErr {
		e := r.PredErr
		j.PredErr = &e
	}
	if r.TraceID != 0 {
		j.TraceID = fmt.Sprintf("%016x", r.TraceID)
	}
	return j
}

func (j *jsonRecord) toRecord() (Record, error) {
	reason, err := ParseReason(j.Reason)
	if err != nil {
		return Record{}, err
	}
	r := Record{
		Seq:       j.Seq,
		Cluster:   j.Cluster,
		Epoch:     j.Epoch,
		Level:     j.Level,
		Reason:    reason,
		Preset:    j.Preset,
		EffPreset: j.EffPreset,
		PredInstr: j.PredInstr,
		LatencyNs: j.LatencyNs,
		ModelGen:  j.ModelGen,
	}
	if j.PredErr != nil {
		r.PredErr = *j.PredErr
		r.HasPredErr = true
	}
	if j.TraceID != "" {
		id, err := strconv.ParseUint(j.TraceID, 16, 64)
		if err != nil {
			return Record{}, fmt.Errorf("provenance: bad trace id %q: %w", j.TraceID, err)
		}
		r.TraceID = id
	}
	r.SetRaw(j.Raw)
	r.SetDerived(j.Derived)
	r.SetLogits(j.Logits)
	return r, nil
}

// Header is the first line of a recorder dump: it attributes the records
// to a binary + model pair and carries the training-set feature
// statistics offline drift analysis needs.
type Header struct {
	Schema int `json:"schema"`
	// Build identifies the producing binary (see internal/buildinfo).
	Build map[string]string `json:"build,omitempty"`
	// Features names the model's selected counters, aligned with each
	// record's Derived array; TrainMean/TrainStd are the training-set
	// statistics of those features (from the model artifact's scaler).
	Features  []string  `json:"features,omitempty"`
	TrainMean []float64 `json:"train_mean,omitempty"`
	TrainStd  []float64 `json:"train_std,omitempty"`
	// Levels and ModelParams describe the model the decisions came from.
	Levels      int `json:"levels,omitempty"`
	ModelParams int `json:"model_params,omitempty"`
	// Capacity and Head snapshot the ring's state at dump time (Head is
	// the total number of records ever written; Head - len(records) were
	// overwritten).
	Capacity int    `json:"capacity,omitempty"`
	Head     uint64 `json:"head,omitempty"`
}

// headerSchema is the current dump schema version.
const headerSchema = 1

// WriteRecords writes a header line followed by one JSON record per line
// (the JSONL dump format cmd/dvfsstat's -decisions view consumes).
func WriteRecords(w io.Writer, hdr Header, recs []Record) error {
	bw := bufio.NewWriter(w)
	hdr.Schema = headerSchema
	enc := json.NewEncoder(bw)
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for i := range recs {
		j := recs[i].toJSON()
		if err := enc.Encode(&j); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadRecords parses a dump written by WriteRecords.
func ReadRecords(r io.Reader) (Header, []Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var hdr Header
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return hdr, nil, err
		}
		return hdr, nil, fmt.Errorf("provenance: empty dump")
	}
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return hdr, nil, fmt.Errorf("provenance: bad header: %w", err)
	}
	if hdr.Schema != headerSchema {
		return hdr, nil, fmt.Errorf("provenance: unsupported dump schema %d", hdr.Schema)
	}
	var recs []Record
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var j jsonRecord
		if err := json.Unmarshal(sc.Bytes(), &j); err != nil {
			return hdr, recs, fmt.Errorf("provenance: record %d: %w", len(recs)+1, err)
		}
		rec, err := j.toRecord()
		if err != nil {
			return hdr, recs, fmt.Errorf("provenance: record %d: %w", len(recs)+1, err)
		}
		recs = append(recs, rec)
	}
	return hdr, recs, sc.Err()
}

// ReadFile reads a dump from disk.
func ReadFile(path string) (Header, []Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, err
	}
	defer f.Close()
	return ReadRecords(f)
}

// WriteFile atomically writes a recorder's current contents (plus the
// attribution header) to path.
func WriteFile(path string, hdr Header, r *Recorder) error {
	recs := r.Snapshot(nil)
	hdr.Capacity = r.Cap()
	hdr.Head = r.Head()
	return atomicfile.Write(path, func(w io.Writer) error {
		return WriteRecords(w, hdr, recs)
	})
}
