package provenance

import (
	"math"
	"sync/atomic"
)

// Recorder is the flight recorder: a fixed-capacity ring buffer of the
// last N decision Records. Record is lock-free and allocation-free —
// writers claim a slot with one atomic increment and publish the record
// as a sequence of plain atomic word stores bracketed by a per-slot
// generation stamp (a seqlock), so any number of decision threads can
// record concurrently while snapshot readers iterate, with no mutex
// anywhere and nothing for the race detector to flag.
//
// A reader that observes a slot mid-write (odd stamp, or a stamp that
// changed across the read) skips it; a writer never waits for anything.
// If the ring wraps completely within the duration of one in-flight
// Record call — which requires the capacity to be tiny relative to the
// writer count — an overwritten slot could in principle publish torn
// data; with the default capacity this window is unreachable, and the
// per-record Seq embedded in the payload lets readers cross-check.
type Recorder struct {
	head  atomic.Uint64   // total records ever written
	seqs  []atomic.Uint64 // per-slot generation stamp: 2g+1 writing, 2g+2 complete
	words []atomic.Uint64 // cap × recWords flat payload
}

// DefaultCapacity is the ring size used when a caller passes n <= 0.
const DefaultCapacity = 4096

// NewRecorder returns a recorder keeping the last n records (n <= 0
// takes DefaultCapacity).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = DefaultCapacity
	}
	return &Recorder{
		seqs:  make([]atomic.Uint64, n),
		words: make([]atomic.Uint64, n*recWords),
	}
}

// Cap returns the ring capacity.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.seqs)
}

// Head returns the total number of records ever written; the ring holds
// the most recent min(Head, Cap) of them.
func (r *Recorder) Head() uint64 {
	if r == nil {
		return 0
	}
	return r.head.Load()
}

// Dropped returns how many records have been overwritten.
func (r *Recorder) Dropped() uint64 {
	h := r.Head()
	if c := uint64(r.Cap()); h > c {
		return h - c
	}
	return 0
}

// Record captures one decision. It assigns rec.Seq (1-based, monotonic
// across the recorder's lifetime), then publishes a copy of *rec into
// the ring. Safe for any number of concurrent callers; a nil recorder is
// a free no-op, so hot paths need no branching at call sites beyond the
// nil check the compiler can hoist.
func (r *Recorder) Record(rec *Record) {
	if r == nil {
		return
	}
	g := r.head.Add(1) - 1
	rec.Seq = g + 1
	slot := int(g % uint64(len(r.seqs)))
	s := &r.seqs[slot]
	s.Store(2*g + 1)
	encodeRecord(r.words[slot*recWords:(slot+1)*recWords], rec)
	s.Store(2*g + 2)
}

// Snapshot appends a consistent copy of the ring's current contents to
// dst, oldest first, and returns it. Slots being rewritten concurrently
// (or already holding a newer generation than the iteration expected)
// are skipped, so the result may hold fewer than Cap records even on a
// full ring under write load.
func (r *Recorder) Snapshot(dst []Record) []Record {
	if r == nil {
		return dst
	}
	head := r.head.Load()
	n := uint64(len(r.seqs))
	start := uint64(0)
	if head > n {
		start = head - n
	}
	var rec Record
	for g := start; g < head; g++ {
		slot := int(g % n)
		s := &r.seqs[slot]
		want := 2*g + 2
		if s.Load() != want {
			continue // mid-write or already overwritten
		}
		decodeRecord(r.words[slot*recWords:(slot+1)*recWords], &rec)
		if s.Load() != want || rec.Seq != g+1 {
			continue // torn read: the slot moved on underneath us
		}
		dst = append(dst, rec)
	}
	return dst
}

// encodeRecord publishes rec into a slot's word region with atomic
// stores only. The layout is documented at recWords.
func encodeRecord(w []atomic.Uint64, rec *Record) {
	w[0].Store(rec.Seq)
	w[1].Store(uint64(uint32(rec.Cluster))<<32 | uint64(uint32(rec.Epoch)))
	flags := uint64(uint32(rec.Level)) << 32
	flags |= uint64(rec.Reason)
	if rec.HasPredErr {
		flags |= 1 << 8
	}
	flags |= uint64(uint8(rec.NumRaw)) << 16
	flags |= uint64(uint8(rec.NumDerived)) << 24
	// NumLogits rides in bits 9..15 (MaxAux fits in 7 bits with room).
	flags |= uint64(uint8(rec.NumLogits)&0x7f) << 9
	w[2].Store(flags)
	w[3].Store(math.Float64bits(rec.Preset))
	w[4].Store(math.Float64bits(rec.EffPreset))
	w[5].Store(math.Float64bits(rec.PredInstr))
	w[6].Store(math.Float64bits(rec.PredErr))
	w[7].Store(uint64(rec.LatencyNs))
	w[8].Store(rec.TraceID)
	w[9].Store(uint64(rec.ModelGen))
	p := recScalarWords
	for i := range rec.Raw {
		w[p+i].Store(math.Float64bits(rec.Raw[i]))
	}
	p += len(rec.Raw)
	for i := range rec.Derived {
		w[p+i].Store(math.Float64bits(rec.Derived[i]))
	}
	p += len(rec.Derived)
	for i := range rec.Logits {
		w[p+i].Store(math.Float64bits(rec.Logits[i]))
	}
}

// decodeRecord is the inverse of encodeRecord, reading with atomic loads.
func decodeRecord(w []atomic.Uint64, rec *Record) {
	rec.Seq = w[0].Load()
	ce := w[1].Load()
	rec.Cluster = int32(uint32(ce >> 32))
	rec.Epoch = int32(uint32(ce))
	flags := w[2].Load()
	rec.Level = int32(uint32(flags >> 32))
	rec.Reason = Reason(flags & 0xff)
	rec.HasPredErr = flags&(1<<8) != 0
	rec.NumRaw = int32(uint8(flags >> 16))
	rec.NumDerived = int32(uint8(flags >> 24))
	rec.NumLogits = int32((flags >> 9) & 0x7f)
	rec.Preset = math.Float64frombits(w[3].Load())
	rec.EffPreset = math.Float64frombits(w[4].Load())
	rec.PredInstr = math.Float64frombits(w[5].Load())
	rec.PredErr = math.Float64frombits(w[6].Load())
	rec.LatencyNs = int64(w[7].Load())
	rec.TraceID = w[8].Load()
	rec.ModelGen = uint32(w[9].Load())
	p := recScalarWords
	for i := range rec.Raw {
		rec.Raw[i] = math.Float64frombits(w[p+i].Load())
	}
	p += len(rec.Raw)
	for i := range rec.Derived {
		rec.Derived[i] = math.Float64frombits(w[p+i].Load())
	}
	p += len(rec.Derived)
	for i := range rec.Logits {
		rec.Logits[i] = math.Float64frombits(w[p+i].Load())
	}
}
