package provenance

import (
	"math"
	"sync"

	"ssmdvfs/internal/telemetry"
)

// MonitorOptions tunes the online model-quality monitor; zero values
// take the defaults.
type MonitorOptions struct {
	// Window is the rolling-window length, in observations, shared by the
	// prediction-error, flip-rate, and feature-drift statistics
	// (default 256).
	Window int
	// MAPEThreshold is the rolling MAPE (as a fraction, e.g. 0.25) above
	// which a threshold-crossing event is logged; 0 takes the default
	// 0.25, negative disables the event.
	MAPEThreshold float64
	// DriftZThreshold is the per-feature |z| (window mean shift in
	// training-σ units) above which a drift event is logged; 0 takes the
	// default 3, negative disables.
	DriftZThreshold float64
	// Logger receives threshold-crossing events; nil is silent.
	Logger *telemetry.Logger
	// OnThreshold, when set, is called once per threshold crossing (in
	// either direction) with the event that fired. It is invoked after the
	// monitor's lock is released, so the callback may call back into the
	// monitor (Stats, DriftState) without deadlocking; it must still be
	// fast, since it runs on the decision path that observed the record.
	OnThreshold func(ThresholdEvent)
}

// ThresholdEvent describes one threshold crossing: Kind is "mape" or
// "drift", Feature names the drifting feature (drift events only), Value
// is the statistic that crossed, and High says which direction (true =
// crossed above the threshold, false = recovered below it).
type ThresholdEvent struct {
	Kind      string
	Feature   string
	Value     float64
	Threshold float64
	High      bool
}

func (o MonitorOptions) withDefaults() MonitorOptions {
	if o.Window <= 0 {
		o.Window = 256
	}
	if o.MAPEThreshold == 0 {
		o.MAPEThreshold = 0.25
	}
	if o.DriftZThreshold == 0 {
		o.DriftZThreshold = 3
	}
	return o
}

// Monitor folds decision records into rolling-window model-quality
// statistics and exports them as gauges on a telemetry registry:
//
//	prov_pred_mape                   rolling MAPE of PredErr samples
//	prov_pred_bias                   rolling signed mean of PredErr
//	prov_level_flip_rate             fraction of decisions that changed a
//	                                 cluster's level vs its previous one
//	prov_feature_mean_z{feature=F}   window-mean shift of feature F in
//	                                 training-σ units
//	prov_feature_var_ratio{feature=F} window variance / training variance
//	prov_decisions_total{reason=R}   decisions answered per reason
//	prov_quality_events_total{kind=K} threshold crossings logged
//
// All methods are safe for concurrent use and allocation-free in steady
// state (a short mutex guards the window rings); a nil *Monitor is a
// valid no-op, so instrumented paths never nil-check.
type Monitor struct {
	opts MonitorOptions

	reasons [NumReasons]*telemetry.Counter

	mu sync.Mutex

	// Prediction-error window (signed relative errors).
	errs   []float64
	errPos int
	errN   int
	sumAbs float64
	sumErr float64

	// Flip window (1 = decision changed the cluster's level).
	flips     []int8
	flipPos   int
	flipN     int
	flipSum   int
	lastLevel map[int32]int32

	// Feature windows: a flat window × feature ring plus running sums.
	nFeat     int
	names     []string
	trainMean []float64
	trainStd  []float64
	fwin      []float64 // opts.Window rows of nFeat values
	fPos      int
	fN        int
	fSum      []float64
	fSumSq    []float64

	gMAPE, gBias, gFlip *telemetry.Gauge
	gZ, gVar            []*telemetry.Gauge

	evMAPE, evDrift *telemetry.Counter
	mapeHigh        bool
	driftHigh       []bool

	// pending accumulates threshold events under the lock; they are
	// drained and delivered to OnThreshold after unlock so the callback
	// can safely re-enter the monitor.
	pending []ThresholdEvent

	reg    *telemetry.Registry
	logger *telemetry.Logger
}

// NewMonitor builds a monitor exporting into reg. Training statistics
// (per-feature mean/σ and names) start empty; install them with
// SetTrainingStats before feature-drift gauges mean anything.
func NewMonitor(reg *telemetry.Registry, opts MonitorOptions) *Monitor {
	opts = opts.withDefaults()
	m := &Monitor{
		opts:      opts,
		errs:      make([]float64, opts.Window),
		flips:     make([]int8, opts.Window),
		lastLevel: make(map[int32]int32, 64),
		gMAPE:     reg.Gauge("prov_pred_mape"),
		gBias:     reg.Gauge("prov_pred_bias"),
		gFlip:     reg.Gauge("prov_level_flip_rate"),
		evMAPE:    reg.Counter("prov_quality_events_total", "kind", "mape"),
		evDrift:   reg.Counter("prov_quality_events_total", "kind", "drift"),
		reg:       reg,
		logger:    opts.Logger,
	}
	for i := range m.reasons {
		m.reasons[i] = reg.Counter("prov_decisions_total", "reason", Reason(i).String())
	}
	return m
}

// SetTrainingStats installs (or replaces, e.g. after a model hot-swap)
// the training-set per-feature statistics drift is measured against.
// names, mean and std must be the same length; the feature windows are
// reset since the reference changed.
func (m *Monitor) SetTrainingStats(names []string, mean, std []float64) {
	if m == nil {
		return
	}
	n := len(names)
	if len(mean) < n {
		n = len(mean)
	}
	if len(std) < n {
		n = len(std)
	}
	if n > MaxAux {
		n = MaxAux
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nFeat = n
	m.names = append(m.names[:0], names[:n]...)
	m.trainMean = append(m.trainMean[:0], mean[:n]...)
	m.trainStd = append(m.trainStd[:0], std[:n]...)
	m.fwin = make([]float64, m.opts.Window*n)
	m.fSum = make([]float64, n)
	m.fSumSq = make([]float64, n)
	m.fPos, m.fN = 0, 0
	m.gZ = m.gZ[:0]
	m.gVar = m.gVar[:0]
	m.driftHigh = make([]bool, n)
	for i := 0; i < n; i++ {
		m.gZ = append(m.gZ, m.reg.Gauge("prov_feature_mean_z", "feature", m.names[i]))
		m.gVar = append(m.gVar, m.reg.Gauge("prov_feature_var_ratio", "feature", m.names[i]))
	}
}

// ObserveRecord folds one decision into every statistic it informs: the
// per-reason counters always; the flip-rate and feature-drift windows
// when the record carries a level and derived features; the
// prediction-error window when the record carries the previous epoch's
// realized error. Nil-safe and allocation-free in steady state.
func (m *Monitor) ObserveRecord(rec *Record) {
	if m == nil {
		return
	}
	if int(rec.Reason) < NumReasons {
		m.reasons[rec.Reason].Add(1)
	}
	m.mu.Lock()

	// Flip rate: did this decision change the cluster's level?
	last, seen := m.lastLevel[rec.Cluster]
	m.lastLevel[rec.Cluster] = rec.Level
	if seen {
		var flip int8
		if last != rec.Level {
			flip = 1
		}
		m.flipSum += int(flip) - int(m.flips[m.flipPos])
		m.flips[m.flipPos] = flip
		m.flipPos = (m.flipPos + 1) % len(m.flips)
		if m.flipN < len(m.flips) {
			m.flipN++
		}
	}
	flipRate := 0.0
	if m.flipN > 0 {
		flipRate = float64(m.flipSum) / float64(m.flipN)
	}

	// Feature drift: fold the derived (selected, unscaled) features.
	if m.nFeat > 0 && int(rec.NumDerived) >= m.nFeat && rec.Reason == ReasonModel {
		base := m.fPos * m.nFeat
		for j := 0; j < m.nFeat; j++ {
			v := rec.Derived[j]
			old := m.fwin[base+j]
			m.fwin[base+j] = v
			m.fSum[j] += v - old
			m.fSumSq[j] += v*v - old*old
		}
		m.fPos = (m.fPos + 1) % m.opts.Window
		if m.fN < m.opts.Window {
			m.fN++
		}
	}

	// Prediction error.
	if rec.HasPredErr {
		e := rec.PredErr
		old := m.errs[m.errPos]
		m.errs[m.errPos] = e
		m.errPos = (m.errPos + 1) % len(m.errs)
		if m.errN < len(m.errs) {
			m.errN++
		} else {
			m.sumAbs -= math.Abs(old)
			m.sumErr -= old
		}
		m.sumAbs += math.Abs(e)
		m.sumErr += e
	}
	m.publishLocked(flipRate)
	var fire []ThresholdEvent
	if len(m.pending) > 0 {
		fire = append(fire, m.pending...)
		m.pending = m.pending[:0]
	}
	m.mu.Unlock()
	if cb := m.opts.OnThreshold; cb != nil {
		for _, ev := range fire {
			cb(ev)
		}
	}
}

// publishLocked refreshes the gauges and fires threshold events; the
// caller holds m.mu.
func (m *Monitor) publishLocked(flipRate float64) {
	m.gFlip.Set(flipRate)
	var mape float64
	if m.errN > 0 {
		mape = m.sumAbs / float64(m.errN)
		m.gMAPE.Set(mape)
		m.gBias.Set(m.sumErr / float64(m.errN))
	}
	// Events only fire on full windows so a couple of noisy first
	// samples cannot trip them, and only on the crossing itself.
	if th := m.opts.MAPEThreshold; th > 0 && m.errN == len(m.errs) {
		if high := mape > th; high != m.mapeHigh {
			m.mapeHigh = high
			if high {
				m.evMAPE.Add(1)
				m.logger.Logf("provenance: rolling MAPE %.3f crossed threshold %.3f (window %d)", mape, th, m.errN)
			} else {
				m.logger.Logf("provenance: rolling MAPE %.3f back under threshold %.3f", mape, th)
			}
			if m.opts.OnThreshold != nil {
				m.pending = append(m.pending, ThresholdEvent{Kind: "mape", Value: mape, Threshold: th, High: high})
			}
		}
	}
	if m.nFeat > 0 && m.fN > 0 {
		// Gauges publish unconditionally; only the crossing events are
		// gated by the (possibly disabled) threshold.
		th := m.opts.DriftZThreshold
		full := m.fN == m.opts.Window
		n := float64(m.fN)
		for j := 0; j < m.nFeat; j++ {
			mean := m.fSum[j] / n
			vr := 0.0
			if sd := m.trainStd[j]; sd > 0 {
				variance := m.fSumSq[j]/n - mean*mean
				if variance < 0 {
					variance = 0
				}
				vr = variance / (sd * sd)
			}
			z := 0.0
			if sd := m.trainStd[j]; sd > 0 {
				z = (mean - m.trainMean[j]) / sd
			}
			m.gZ[j].Set(z)
			m.gVar[j].Set(vr)
			if full && th > 0 {
				if high := math.Abs(z) > th; high != m.driftHigh[j] {
					m.driftHigh[j] = high
					if high {
						m.evDrift.Add(1)
						m.logger.Logf("provenance: feature %s drifted: window mean z=%.2f (threshold %.2f)", m.names[j], z, th)
					} else {
						m.logger.Logf("provenance: feature %s back in range (z=%.2f)", m.names[j], z)
					}
					if m.opts.OnThreshold != nil {
						m.pending = append(m.pending, ThresholdEvent{Kind: "drift", Feature: m.names[j], Value: z, Threshold: th, High: high})
					}
				}
			}
		}
	}
}

// Stats is a point-in-time view of the monitor's rolling statistics,
// for tests and end-of-run summaries.
type Stats struct {
	MAPE       float64
	Bias       float64
	ErrSamples int
	FlipRate   float64
}

// DriftState is a level-triggered view of the monitor's threshold state:
// unlike the crossing events (which fire once per edge and are easy to
// miss for a poller that attaches late), it reports what is true *now*.
type DriftState struct {
	// MAPEHigh is true while the rolling MAPE sits above its threshold
	// (on a full window). MAPE is the current rolling value, ErrSamples
	// how many samples back it.
	MAPEHigh   bool
	MAPE       float64
	ErrSamples int
	// Drifting lists the features whose window-mean |z| currently exceeds
	// the drift threshold, with their z values; WorstZ is the largest |z|
	// across all features (signed), WorstFeature its name. Feature state
	// is only meaningful on a full feature window (FeatureSamples ==
	// window length).
	Drifting       []string
	DriftZ         []float64
	WorstFeature   string
	WorstZ         float64
	FeatureSamples int
	FlipRate       float64
}

// Any reports whether any level-triggered condition is currently high.
func (s DriftState) Any() bool { return s.MAPEHigh || len(s.Drifting) > 0 }

// DriftState returns the current level-triggered threshold state. Unlike
// the edge-triggered events, polling this cannot race a crossing: a
// controller that checks between two crossings still sees the condition
// while it holds. Nil-safe; allocates only when features are drifting.
func (m *Monitor) DriftState() DriftState {
	if m == nil {
		return DriftState{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st := DriftState{ErrSamples: m.errN, FeatureSamples: m.fN}
	if m.errN > 0 {
		st.MAPE = m.sumAbs / float64(m.errN)
	}
	if th := m.opts.MAPEThreshold; th > 0 && m.errN == len(m.errs) {
		st.MAPEHigh = st.MAPE > th
	}
	if m.flipN > 0 {
		st.FlipRate = float64(m.flipSum) / float64(m.flipN)
	}
	if m.nFeat > 0 && m.fN == m.opts.Window {
		th := m.opts.DriftZThreshold
		n := float64(m.fN)
		for j := 0; j < m.nFeat; j++ {
			if sd := m.trainStd[j]; sd > 0 {
				z := (m.fSum[j]/n - m.trainMean[j]) / sd
				if math.Abs(z) > math.Abs(st.WorstZ) {
					st.WorstZ = z
					st.WorstFeature = m.names[j]
				}
				if th > 0 && math.Abs(z) > th {
					st.Drifting = append(st.Drifting, m.names[j])
					st.DriftZ = append(st.DriftZ, z)
				}
			}
		}
	}
	return st
}

// Stats returns the current rolling statistics.
func (m *Monitor) Stats() Stats {
	if m == nil {
		return Stats{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{ErrSamples: m.errN}
	if m.errN > 0 {
		s.MAPE = m.sumAbs / float64(m.errN)
		s.Bias = m.sumErr / float64(m.errN)
	}
	if m.flipN > 0 {
		s.FlipRate = float64(m.flipSum) / float64(m.flipN)
	}
	return s
}
