// Package asic models the hardware implementation of Section V-D: a
// small FP32 MAC-array inference engine executing the compressed SSMDVFS
// model, with cycle, area, and power estimates at a synthesis node
// (65 nm TSMC in the paper) scaled to the GPU's 28 nm node with
// DeepScaleTool-style technology factors.
package asic

import (
	"fmt"
	"math"

	"ssmdvfs/internal/core"
)

// nodeVoltage gives nominal supply voltage per technology node (nm), the
// basis of the power-scaling factor (capacitance ∝ node, P ∝ C·V²·f).
var nodeVoltage = map[int]float64{
	180: 1.8,
	130: 1.3,
	90:  1.2,
	65:  1.1,
	45:  1.0,
	32:  0.95,
	28:  0.90,
	20:  0.85,
	16:  0.80,
}

// ScaleArea returns the factor multiplying area when moving a design from
// one node to another (classical (target/source)² dimensional scaling).
func ScaleArea(fromNm, toNm int) (float64, error) {
	if err := checkNodes(fromNm, toNm); err != nil {
		return 0, err
	}
	r := float64(toNm) / float64(fromNm)
	return r * r, nil
}

// ScalePower returns the factor multiplying dynamic power at constant
// frequency: capacitance scales with feature size and switching energy
// with V².
func ScalePower(fromNm, toNm int) (float64, error) {
	if err := checkNodes(fromNm, toNm); err != nil {
		return 0, err
	}
	vr := nodeVoltage[toNm] / nodeVoltage[fromNm]
	return (float64(toNm) / float64(fromNm)) * vr * vr, nil
}

func checkNodes(fromNm, toNm int) error {
	if _, ok := nodeVoltage[fromNm]; !ok {
		return fmt.Errorf("asic: unknown source node %d nm", fromNm)
	}
	if _, ok := nodeVoltage[toNm]; !ok {
		return fmt.Errorf("asic: unknown target node %d nm", toNm)
	}
	return nil
}

// Config describes the inference engine and its characterization.
type Config struct {
	// MACs is the number of parallel FP32 multiply-accumulate units. The
	// paper's module is tiny — a single MAC reproduces its ~192-cycle
	// latency on the compressed model.
	MACs int
	// PipelineCyclesPerLayer covers activation, bias, and writeback.
	PipelineCyclesPerLayer int
	// ClockHz is the module clock (the GPU's default core clock).
	ClockHz float64

	// Characterization at the synthesis node.
	SynthesisNodeNm int
	TargetNodeNm    int
	// MACAreaUm2 is one FP32 MAC's area at the synthesis node;
	// SRAMAreaUm2PerByte covers weight/bias storage; ControlOverhead is
	// the fractional area added for control, I/O and routing.
	MACAreaUm2         float64
	SRAMAreaUm2PerByte float64
	ControlOverhead    float64
	// MACEnergyPJ is one FP32 MAC operation's energy at the synthesis
	// node; SRAMReadPJPerByte the weight-fetch energy.
	MACEnergyPJ       float64
	SRAMReadPJPerByte float64
	// LeakageWPerMM2 is static power density at the synthesis node.
	LeakageWPerMM2 float64
}

// DefaultConfig returns the characterization used to reproduce the
// paper's Section V-D numbers (65 nm synthesis, 28 nm target, single
// FP32 MAC at the 1165 MHz default clock).
func DefaultConfig() Config {
	return Config{
		MACs:                   1,
		PipelineCyclesPerLayer: 3,
		ClockHz:                1165e6,
		SynthesisNodeNm:        65,
		TargetNodeNm:           28,
		MACAreaUm2:             14000,
		SRAMAreaUm2PerByte:     16,
		ControlOverhead:        0.35,
		MACEnergyPJ:            8.0,
		SRAMReadPJPerByte:      1.2,
		LeakageWPerMM2:         0.02,
	}
}

// Report is the hardware estimate for one model.
type Report struct {
	CyclesPerInference int
	LatencyUs          float64
	AreaMM2            float64
	// EnergyPJ is energy per inference; PowerW the average power while
	// inferring.
	EnergyPJ float64
	PowerW   float64
	// EpochFraction is latency over the 10 µs DVFS period.
	EpochFraction float64
	// WeightBytes is the weight+bias storage footprint.
	WeightBytes int
}

// Estimate computes the hardware cost of running the model on the engine.
// Pruned models are costed by their surviving (nonzero) weights — the
// engine skips zeros via its weight-index SRAM, as in standard sparse
// MLP accelerators.
func Estimate(m *core.Model, cfg Config) (Report, error) {
	var rep Report
	if cfg.MACs <= 0 || cfg.ClockHz <= 0 {
		return rep, fmt.Errorf("asic: MACs and ClockHz must be positive")
	}
	areaScale, err := ScaleArea(cfg.SynthesisNodeNm, cfg.TargetNodeNm)
	if err != nil {
		return rep, err
	}
	powerScale, err := ScalePower(cfg.SynthesisNodeNm, cfg.TargetNodeNm)
	if err != nil {
		return rep, err
	}

	// Cycle count: MAC-limited per layer plus pipeline overhead.
	layers := 0
	macOps := 0
	params := 0
	for _, l := range m.Decision.Layers {
		layers++
		macOps += l.NonzeroWeights()
		params += l.NonzeroWeights() + l.Out
	}
	for _, l := range m.Calibrator.Layers {
		layers++
		macOps += l.NonzeroWeights()
		params += l.NonzeroWeights() + l.Out
	}
	cycles := (macOps+cfg.MACs-1)/cfg.MACs + layers*cfg.PipelineCyclesPerLayer
	rep.CyclesPerInference = cycles
	rep.LatencyUs = float64(cycles) / cfg.ClockHz * 1e6
	rep.EpochFraction = rep.LatencyUs / 10.0

	// Area: MACs + weight SRAM (4 bytes/param FP32) + control overhead,
	// scaled to the target node.
	rep.WeightBytes = params * 4
	areaUm2 := float64(cfg.MACs)*cfg.MACAreaUm2 + float64(rep.WeightBytes)*cfg.SRAMAreaUm2PerByte
	areaUm2 *= 1 + cfg.ControlOverhead
	rep.AreaMM2 = areaUm2 * areaScale / 1e6

	// Energy: MAC ops + weight fetches, scaled; power averaged over the
	// inference latency plus leakage.
	energyPJ := float64(macOps)*cfg.MACEnergyPJ + float64(rep.WeightBytes)*cfg.SRAMReadPJPerByte
	energyPJ *= powerScale
	rep.EnergyPJ = energyPJ
	leakW := cfg.LeakageWPerMM2 * rep.AreaMM2
	rep.PowerW = energyPJ*1e-12/(rep.LatencyUs*1e-6) + leakW
	if math.IsNaN(rep.PowerW) || math.IsInf(rep.PowerW, 0) {
		return rep, fmt.Errorf("asic: degenerate power estimate")
	}
	return rep, nil
}
