package asic

import (
	"math"
	"math/rand"
	"testing"

	"ssmdvfs/internal/core"
	"ssmdvfs/internal/counters"
	"ssmdvfs/internal/nn"
)

// compressedModel builds a model shaped like the paper's final network:
// 3 decision layers and 2 calibrator layers, 12-wide, pruned.
func compressedModel(t *testing.T) *core.Model {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	dec, err := nn.NewMLP([]int{6, 12, 10, 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := nn.NewMLP([]int{7, 11, 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	return &core.Model{
		FeatureIdx:     counters.SelectedFive(),
		Levels:         6,
		Decision:       dec,
		Calibrator:     cal,
		DecisionScaler: &counters.Scaler{Mean: make([]float64, 6), Std: ones(6)},
		CalibScaler:    &counters.Scaler{Mean: make([]float64, 7), Std: ones(7)},
		TargetScale:    10000,
	}
}

func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func TestScaleAreaQuadratic(t *testing.T) {
	s, err := ScaleArea(65, 28)
	if err != nil {
		t.Fatal(err)
	}
	want := (28.0 / 65.0) * (28.0 / 65.0)
	if math.Abs(s-want) > 1e-12 {
		t.Fatalf("ScaleArea(65→28) = %g, want %g", s, want)
	}
	// Identity.
	if s, _ := ScaleArea(28, 28); s != 1 {
		t.Fatalf("same-node area scale = %g, want 1", s)
	}
}

func TestScalePowerShrinksWhenShrinking(t *testing.T) {
	s, err := ScalePower(65, 28)
	if err != nil {
		t.Fatal(err)
	}
	if s >= 1 || s <= 0 {
		t.Fatalf("ScalePower(65→28) = %g, want in (0,1)", s)
	}
}

func TestScaleUnknownNode(t *testing.T) {
	if _, err := ScaleArea(65, 33); err == nil {
		t.Fatal("unknown node accepted")
	}
	if _, err := ScalePower(42, 28); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestEstimateReproducesSectionVD(t *testing.T) {
	m := compressedModel(t)
	rep, err := Estimate(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports 192 cycles (0.16 µs, 1.65% of a 10 µs epoch),
	// 0.0080 mm² at 28 nm, 0.0025 W. Exact numbers depend on pruning;
	// check the magnitudes with a dense (unpruned) compressed model.
	if rep.CyclesPerInference < 100 || rep.CyclesPerInference > 600 {
		t.Fatalf("cycles/inference = %d, want O(100)", rep.CyclesPerInference)
	}
	if rep.LatencyUs <= 0 || rep.LatencyUs > 0.6 {
		t.Fatalf("latency = %g µs, want well under a 10 µs epoch", rep.LatencyUs)
	}
	if rep.EpochFraction > 0.06 {
		t.Fatalf("epoch fraction = %.3f, want a few percent", rep.EpochFraction)
	}
	if rep.AreaMM2 < 0.001 || rep.AreaMM2 > 0.05 {
		t.Fatalf("area = %g mm², want O(0.01)", rep.AreaMM2)
	}
	if rep.PowerW <= 0 || rep.PowerW > 0.05 {
		t.Fatalf("power = %g W, want a few mW", rep.PowerW)
	}
}

func TestEstimatePrunedCostsLess(t *testing.T) {
	m := compressedModel(t)
	dense, err := Estimate(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Zero 60% of weights via masks.
	for _, head := range []*nn.MLP{m.Decision, m.Calibrator} {
		for _, l := range head.Layers {
			mask := make([]float64, len(l.W))
			for i := range mask {
				if i%5 >= 3 {
					mask[i] = 1
				}
			}
			if err := l.SetMask(mask); err != nil {
				t.Fatal(err)
			}
		}
	}
	sparse, err := Estimate(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if sparse.CyclesPerInference >= dense.CyclesPerInference {
		t.Fatalf("pruned model not cheaper: %d >= %d cycles", sparse.CyclesPerInference, dense.CyclesPerInference)
	}
	if sparse.EnergyPJ >= dense.EnergyPJ {
		t.Fatalf("pruned model not lower energy: %g >= %g", sparse.EnergyPJ, dense.EnergyPJ)
	}
}

func TestEstimateMoreMACsFewerCycles(t *testing.T) {
	m := compressedModel(t)
	cfg1 := DefaultConfig()
	cfg4 := DefaultConfig()
	cfg4.MACs = 4
	r1, err := Estimate(m, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Estimate(m, cfg4)
	if err != nil {
		t.Fatal(err)
	}
	if r4.CyclesPerInference >= r1.CyclesPerInference {
		t.Fatalf("4 MACs not faster: %d >= %d", r4.CyclesPerInference, r1.CyclesPerInference)
	}
	if r4.AreaMM2 <= r1.AreaMM2 {
		t.Fatalf("4 MACs not larger: %g <= %g", r4.AreaMM2, r1.AreaMM2)
	}
}

func TestEstimateValidation(t *testing.T) {
	m := compressedModel(t)
	cfg := DefaultConfig()
	cfg.MACs = 0
	if _, err := Estimate(m, cfg); err == nil {
		t.Fatal("zero MACs accepted")
	}
	cfg = DefaultConfig()
	cfg.TargetNodeNm = 99
	if _, err := Estimate(m, cfg); err == nil {
		t.Fatal("unknown node accepted")
	}
}
