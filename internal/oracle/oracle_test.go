package oracle

import (
	"testing"

	"ssmdvfs/internal/gpusim"
	"ssmdvfs/internal/isa"
)

func memKernel(iters int) gpusim.Kernel {
	prog := isa.Program{
		Body: []isa.Instruction{
			{Op: isa.OpLoadGlobal, Dst: 1, Mem: isa.MemSpec{
				Base: 0x1000_0000, FootprintBytes: 64 << 20, StrideBytes: 256,
				WarpStrideBytes: 1 << 16, CoalescedLines: 8, Pattern: isa.PatternSequential,
			}},
			{Op: isa.OpFAlu, Dst: 2, SrcA: 1},
		},
		Iterations: iters,
	}
	return gpusim.Kernel{Name: "oracle-mem", WarpsPerCluster: 8, Programs: []isa.Program{prog}}
}

func cpuKernel(iters int) gpusim.Kernel {
	prog := isa.Program{
		Body: []isa.Instruction{
			{Op: isa.OpFAlu, Dst: 1, SrcA: 1},
			{Op: isa.OpFAlu, Dst: 2, SrcA: 2},
			{Op: isa.OpFAlu, Dst: 3, SrcA: 3},
		},
		Iterations: iters,
	}
	return gpusim.Kernel{Name: "oracle-cpu", WarpsPerCluster: 8, Programs: []isa.Program{prog}}
}

func cfg() gpusim.Config {
	c := gpusim.SmallConfig()
	c.Clusters = 2
	return c
}

func TestStaticBestMemoryBoundPicksLowLevel(t *testing.T) {
	c := cfg()
	results, best, err := StaticBest(c, memKernel(300), 0.10, EDPObjective, 1_000_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != c.OPs.Len() {
		t.Fatalf("got %d results", len(results))
	}
	if best > 1 {
		t.Fatalf("memory-bound static best = level %d, want near 0", best)
	}
}

func TestStaticBestComputeBoundRespectsBudget(t *testing.T) {
	c := cfg()
	results, best, err := StaticBest(c, cpuKernel(2000), 0.05, EDPObjective, 1_000_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	baseT := results[c.OPs.Default()].ExecTimePs
	loss := float64(results[best].ExecTimePs-baseT) / float64(baseT)
	if loss > 0.05+1e-9 {
		t.Fatalf("static best level %d loses %.2f%%, budget 5%%", best, loss*100)
	}
}

func TestStaticBestObjectives(t *testing.T) {
	c := cfg()
	_, bestEDP, err := StaticBest(c, memKernel(200), 0.20, EDPObjective, 1_000_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	_, bestE, err := StaticBest(c, memKernel(200), 0.20, EnergyObjective, 1_000_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Energy minimization never prefers a faster level than EDP
	// minimization (speed only helps the delay term).
	if bestE > bestEDP {
		t.Fatalf("energy-best level %d faster than EDP-best %d", bestE, bestEDP)
	}
}

func TestGreedyBeatsOrMatchesDefaultEDP(t *testing.T) {
	c := cfg()
	k := memKernel(250)
	base, _, err := StaticBest(c, k, 0, EDPObjective, 1_000_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	defRes := base[c.OPs.Default()]

	res, err := Greedy(c, k, GreedyOptions{Preset: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Result.Completed {
		t.Fatal("greedy run incomplete")
	}
	if res.Probes == 0 || len(res.Levels) == 0 {
		t.Fatal("greedy did no probing")
	}
	// The clairvoyant policy may not beat static-min on a uniformly
	// memory-bound kernel, but it must never be much worse than default.
	if res.Result.EDP() > defRes.EDP()*1.02 {
		t.Fatalf("greedy EDP %.3g worse than default %.3g", res.Result.EDP(), defRes.EDP())
	}
	// On a memory-bound kernel the oracle should pick low levels mostly.
	low := 0
	for _, l := range res.Levels {
		if l <= 1 {
			low++
		}
	}
	if low*2 < len(res.Levels) {
		t.Fatalf("oracle chose low levels only %d/%d times on a memory-bound kernel", low, len(res.Levels))
	}
}

func TestGreedyHorizonProbe(t *testing.T) {
	c := cfg()
	res, err := Greedy(c, memKernel(150), GreedyOptions{Preset: 0.10, HorizonPs: 30_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Result.Completed {
		t.Fatal("greedy horizon run incomplete")
	}
}

func TestGreedyRejectsNegativePreset(t *testing.T) {
	if _, err := Greedy(cfg(), memKernel(10), GreedyOptions{Preset: -1}); err == nil {
		t.Fatal("negative preset accepted")
	}
}
