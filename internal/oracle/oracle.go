// Package oracle computes DVFS upper bounds no online mechanism can see:
// a clairvoyant per-epoch policy that, at every epoch boundary, clones
// the simulator and actually measures each operating point's effect on
// the remaining execution before committing, and a static-best policy
// that runs the whole program at every fixed level. Both are evaluation
// tools — they exploit the simulator's Clone support and are impossible
// on real hardware — used to report how much headroom SSMDVFS leaves.
package oracle

import (
	"fmt"

	"ssmdvfs/internal/gpusim"
)

// Objective scores a finished run; lower is better.
type Objective func(res gpusim.Result) float64

// EDPObjective minimizes the energy-delay product.
func EDPObjective(res gpusim.Result) float64 { return res.EDP() }

// EnergyObjective minimizes energy.
func EnergyObjective(res gpusim.Result) float64 { return res.EnergyPJ }

// StaticBest runs the kernel once per fixed operating level and returns
// the per-level results plus the index of the best level whose
// performance loss (vs the default level) stays within maxLoss.
func StaticBest(cfg gpusim.Config, kernel gpusim.Kernel, maxLoss float64, obj Objective, maxPs int64) (results []gpusim.Result, best int, err error) {
	if obj == nil {
		obj = EDPObjective
	}
	levels := cfg.OPs.Len()
	results = make([]gpusim.Result, levels)
	for lvl := 0; lvl < levels; lvl++ {
		sim, err := gpusim.New(cfg, kernel)
		if err != nil {
			return nil, 0, err
		}
		sim.ForceLevel(lvl)
		results[lvl] = sim.Run(maxPs)
		if !results[lvl].Completed {
			return nil, 0, fmt.Errorf("oracle: level %d did not complete within %d ps", lvl, maxPs)
		}
	}
	baseT := results[cfg.OPs.Default()].ExecTimePs
	best = cfg.OPs.Default()
	bestScore := obj(results[best])
	for lvl := 0; lvl < levels; lvl++ {
		loss := float64(results[lvl].ExecTimePs-baseT) / float64(baseT)
		if loss > maxLoss {
			continue
		}
		if s := obj(results[lvl]); s < bestScore {
			best, bestScore = lvl, s
		}
	}
	return results, best, nil
}

// GreedyOptions configures the clairvoyant per-epoch search.
type GreedyOptions struct {
	// Preset bounds the *window-normalized* loss each epoch's choice may
	// cost relative to choosing the default level for that epoch.
	Preset float64
	// Horizon is how far (in ps) each probe continues past the epoch
	// being decided before scoring; 0 probes to completion (exact but
	// slowest).
	HorizonPs int64
	// Objective scores probes (default EDP of the probe run).
	Objective Objective
	// MaxRunPs bounds every simulation.
	MaxRunPs int64
}

// GreedyResult is the clairvoyant run's outcome.
type GreedyResult struct {
	Result gpusim.Result
	// Levels records the level chosen at each epoch boundary.
	Levels []int
	// Probes is the number of cloned probe simulations executed.
	Probes int
}

// Greedy runs the clairvoyant per-epoch policy: before each epoch, clone
// the simulator once per chip-wide level, run the probe forward, and
// commit to the level with the best objective among those whose
// window-normalized loss stays within the preset. Chip-wide (all
// clusters share the level) keeps the search space linear in levels.
func Greedy(cfg gpusim.Config, kernel gpusim.Kernel, opts GreedyOptions) (*GreedyResult, error) {
	if opts.MaxRunPs <= 0 {
		opts.MaxRunPs = 5_000_000_000_000
	}
	if opts.Objective == nil {
		opts.Objective = EDPObjective
	}
	if opts.Preset < 0 {
		return nil, fmt.Errorf("oracle: negative preset")
	}
	sim, err := gpusim.New(cfg, kernel)
	if err != nil {
		return nil, err
	}
	defaultLevel := cfg.OPs.Default()
	out := &GreedyResult{}

	for epoch := int64(0); ; epoch++ {
		if sim.Done() {
			break
		}
		boundary := epoch * cfg.EpochPs
		next := boundary + cfg.EpochPs
		if boundary > opts.MaxRunPs {
			return nil, fmt.Errorf("oracle: exceeded MaxRunPs while deciding")
		}

		// Probe every level for the upcoming epoch.
		bestLevel := defaultLevel
		bestScore := 0.0
		var refTime int64 = -1
		haveBest := false
		for lvl := cfg.OPs.Len() - 1; lvl >= 0; lvl-- {
			probe := sim.Clone()
			probe.ForceLevel(lvl)
			probe.RunUntil(next + 1)
			probe.ForceLevel(defaultLevel)
			var res gpusim.Result
			if opts.HorizonPs > 0 {
				res = probe.Run(min64(next+opts.HorizonPs, opts.MaxRunPs))
				// A horizon probe may legitimately not complete.
			} else {
				res = probe.Run(opts.MaxRunPs)
				if !res.Completed {
					return nil, fmt.Errorf("oracle: probe did not complete")
				}
			}
			out.Probes++
			if lvl == defaultLevel {
				refTime = res.ExecTimePs
			}
			// Window-normalized loss of this choice vs the default probe.
			// The default level is probed first (descending loop), so
			// refTime is always available here.
			loss := float64(res.ExecTimePs-refTime) / float64(cfg.EpochPs)
			if loss > opts.Preset {
				continue
			}
			score := opts.Objective(res)
			if !haveBest || score < bestScore {
				bestLevel, bestScore, haveBest = lvl, score, true
			}
		}

		// Commit: advance the real simulation one epoch at the choice.
		sim.ForceLevel(bestLevel)
		sim.RunUntil(next + 1)
		out.Levels = append(out.Levels, bestLevel)
	}
	sim.ForceLevel(defaultLevel)
	out.Result = sim.Run(opts.MaxRunPs)
	if !out.Result.Completed {
		return nil, fmt.Errorf("oracle: committed run did not complete")
	}
	return out, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
