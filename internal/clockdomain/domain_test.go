package clockdomain

import "testing"

func TestDomainStartsAtDefault(t *testing.T) {
	d := NewDomain(TitanX(), DefaultIVR())
	if d.Level() != 5 {
		t.Fatalf("new domain level = %d, want 5 (default)", d.Level())
	}
	if d.Stalled(0) {
		t.Fatal("new domain should not be stalled")
	}
}

func TestIVRTransitionCosts(t *testing.T) {
	ivr := DefaultIVR()
	tbl := TitanX()
	same := tbl.Point(2)
	if got := ivr.TransitionPs(same, same); got != 0 {
		t.Fatalf("same-point transition = %d ps, want 0", got)
	}
	// Levels 0-3 share 1.0 V: frequency-only relock.
	if got := ivr.TransitionPs(tbl.Point(0), tbl.Point(3)); got != ivr.FrequencyRelockPs {
		t.Fatalf("freq-only transition = %d ps, want %d", got, ivr.FrequencyRelockPs)
	}
	// Level 3 (1.0 V) to 5 (1.155 V): voltage settle.
	if got := ivr.TransitionPs(tbl.Point(3), tbl.Point(5)); got != ivr.VoltageSettlePs {
		t.Fatalf("voltage transition = %d ps, want %d", got, ivr.VoltageSettlePs)
	}
}

func TestDomainSetLevel(t *testing.T) {
	d := NewDomain(TitanX(), DefaultIVR())

	if changed := d.SetLevel(5, 0); changed {
		t.Fatal("setting current level reported a transition")
	}
	if d.Transitions() != 0 {
		t.Fatalf("transitions = %d, want 0", d.Transitions())
	}

	now := int64(1_000_000)
	if changed := d.SetLevel(0, now); !changed {
		t.Fatal("level change not reported")
	}
	if d.Level() != 0 {
		t.Fatalf("level = %d, want 0", d.Level())
	}
	// 1.155 V → 1.0 V is a voltage transition.
	wantUntil := now + DefaultIVR().VoltageSettlePs
	if d.StallUntilPs() != wantUntil {
		t.Fatalf("stall until %d, want %d", d.StallUntilPs(), wantUntil)
	}
	if !d.Stalled(now) {
		t.Fatal("domain should be stalled right after a voltage transition")
	}
	if d.Stalled(wantUntil) {
		t.Fatal("domain should not be stalled once the settle time passes")
	}
	if d.Transitions() != 1 {
		t.Fatalf("transitions = %d, want 1", d.Transitions())
	}
	if d.StalledPs() != DefaultIVR().VoltageSettlePs {
		t.Fatalf("stalledPs = %d, want %d", d.StalledPs(), DefaultIVR().VoltageSettlePs)
	}
}

func TestDomainSetLevelClamps(t *testing.T) {
	d := NewDomain(TitanX(), DefaultIVR())
	d.SetLevel(-3, 0)
	if d.Level() != 0 {
		t.Fatalf("level = %d, want clamped 0", d.Level())
	}
	d.SetLevel(99, 0)
	if d.Level() != 5 {
		t.Fatalf("level = %d, want clamped 5", d.Level())
	}
}

func TestDomainPeriodTracksLevel(t *testing.T) {
	d := NewDomain(TitanX(), DefaultIVR())
	if d.PeriodPs() != d.Table().Point(5).PeriodPs() {
		t.Fatal("period does not match default point")
	}
	d.SetLevel(0, 0)
	if d.PeriodPs() != d.Table().Point(0).PeriodPs() {
		t.Fatal("period does not match level 0 after transition")
	}
}
