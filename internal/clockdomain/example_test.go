package clockdomain_test

import (
	"fmt"

	"ssmdvfs/internal/clockdomain"
)

func ExampleTable_MinLevelForLoss() {
	tbl := clockdomain.TitanX()
	// The lowest operating point whose ideal compute-bound slowdown fits
	// a 20% loss budget.
	lvl := tbl.MinLevelForLoss(0.20)
	fmt.Println(lvl, tbl.Point(lvl))
	// Output: 3 (1.000V, 975MHz)
}

func ExampleDomain() {
	d := clockdomain.NewDomain(clockdomain.TitanX(), clockdomain.DefaultIVR())
	fmt.Println("start:", d.Point())

	// A DVFS transition at t = 1 µs stalls the domain while the IVR
	// settles the new voltage.
	d.SetLevel(0, 1_000_000)
	fmt.Println("after:", d.Point())
	fmt.Println("stalled at t+100ns:", d.Stalled(1_100_000))
	fmt.Println("stalled at t+600ns:", d.Stalled(1_600_000))
	// Output:
	// start: (1.155V, 1165MHz)
	// after: (1.000V, 683MHz)
	// stalled at t+100ns: true
	// stalled at t+600ns: false
}
