package clockdomain

import "fmt"

// IVRModel models an integrated voltage regulator's V/f transition cost.
// Modern IVRs (Toprak-Deniz'14, Kim'15, Keller'16) switch in well under a
// microsecond; the default model charges a fixed settle time per voltage
// step plus a smaller relock time for frequency-only changes.
type IVRModel struct {
	// VoltageSettlePs is the stall charged when the voltage changes.
	VoltageSettlePs int64
	// FrequencyRelockPs is the stall charged when only frequency changes.
	FrequencyRelockPs int64
}

// DefaultIVR returns a sub-microsecond IVR: 500 ns voltage settle,
// 100 ns PLL/DFS relock.
func DefaultIVR() IVRModel {
	return IVRModel{VoltageSettlePs: 500_000, FrequencyRelockPs: 100_000}
}

// TransitionPs returns the stall time in picoseconds for moving between
// two operating points. Identical points cost nothing.
func (m IVRModel) TransitionPs(from, to OperatingPoint) int64 {
	if from == to {
		return 0
	}
	if from.VoltageV != to.VoltageV {
		return m.VoltageSettlePs
	}
	return m.FrequencyRelockPs
}

// Domain is a per-cluster clock domain: a current operating-point level
// within a Table, plus accounting for DVFS transitions driven through an
// IVR. Domains are not safe for concurrent use; each simulated cluster
// owns one.
type Domain struct {
	table *Table
	ivr   IVRModel

	level int
	// stallUntilPs is the absolute simulation time before which the domain
	// is stalled completing a V/f transition.
	stallUntilPs int64

	transitions int
	stalledPs   int64
}

// NewDomain creates a clock domain running at the table's default level.
func NewDomain(table *Table, ivr IVRModel) *Domain {
	return &Domain{table: table, ivr: ivr, level: table.Default()}
}

// Level returns the current operating-point level.
func (d *Domain) Level() int { return d.level }

// Point returns the current operating point.
func (d *Domain) Point() OperatingPoint { return d.table.Point(d.level) }

// PeriodPs returns the current clock period in picoseconds.
func (d *Domain) PeriodPs() int64 { return d.Point().PeriodPs() }

// Table returns the domain's operating-point table.
func (d *Domain) Table() *Table { return d.table }

// Transitions returns how many V/f changes the domain has performed.
func (d *Domain) Transitions() int { return d.transitions }

// StalledPs returns total picoseconds spent stalled in IVR transitions.
func (d *Domain) StalledPs() int64 { return d.stalledPs }

// SetLevel requests a transition to the given level at absolute time
// nowPs. The level is clamped to the table range. If it differs from the
// current level the domain stalls for the IVR transition time. It reports
// whether a transition actually occurred.
func (d *Domain) SetLevel(level int, nowPs int64) bool {
	level = d.table.Clamp(level)
	if level == d.level {
		return false
	}
	from := d.table.Point(d.level)
	to := d.table.Point(level)
	stall := d.ivr.TransitionPs(from, to)
	d.level = level
	d.transitions++
	d.stalledPs += stall
	if until := nowPs + stall; until > d.stallUntilPs {
		d.stallUntilPs = until
	}
	return true
}

// Stalled reports whether the domain is mid-transition at time nowPs.
func (d *Domain) Stalled(nowPs int64) bool { return nowPs < d.stallUntilPs }

// StallUntilPs returns the absolute time at which the current transition
// (if any) completes.
func (d *Domain) StallUntilPs() int64 { return d.stallUntilPs }

func (d *Domain) String() string {
	return fmt.Sprintf("domain{level=%d %v transitions=%d}", d.level, d.Point(), d.transitions)
}
