package clockdomain

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewTableSortsByFrequency(t *testing.T) {
	tbl, err := NewTable([]OperatingPoint{
		{VoltageV: 1.1, FrequencyHz: 1100e6},
		{VoltageV: 1.0, FrequencyHz: 683e6},
		{VoltageV: 1.0, FrequencyHz: 975e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < tbl.Len(); i++ {
		if tbl.Point(i).FrequencyHz <= tbl.Point(i-1).FrequencyHz {
			t.Fatalf("table not sorted at %d: %v after %v", i, tbl.Point(i), tbl.Point(i-1))
		}
	}
	if tbl.Default() != tbl.Len()-1 {
		t.Fatalf("default level = %d, want %d", tbl.Default(), tbl.Len()-1)
	}
}

func TestNewTableErrors(t *testing.T) {
	cases := []struct {
		name   string
		points []OperatingPoint
	}{
		{"too few", []OperatingPoint{{VoltageV: 1, FrequencyHz: 1e9}}},
		{"zero frequency", []OperatingPoint{{VoltageV: 1, FrequencyHz: 0}, {VoltageV: 1, FrequencyHz: 1e9}}},
		{"negative voltage", []OperatingPoint{{VoltageV: -1, FrequencyHz: 1e8}, {VoltageV: 1, FrequencyHz: 1e9}}},
		{"voltage decreasing with frequency", []OperatingPoint{
			{VoltageV: 1.2, FrequencyHz: 1e8},
			{VoltageV: 1.0, FrequencyHz: 1e9},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewTable(tc.points); err == nil {
				t.Fatalf("NewTable(%v) succeeded, want error", tc.points)
			}
		})
	}
}

func TestTitanXTable(t *testing.T) {
	tbl := TitanX()
	if tbl.Len() != 6 {
		t.Fatalf("TitanX has %d points, want 6", tbl.Len())
	}
	def := tbl.Point(tbl.Default())
	if def.FrequencyHz != 1165e6 || def.VoltageV != 1.155 {
		t.Fatalf("default OP = %v, want (1.155V, 1165MHz)", def)
	}
	min := tbl.Point(0)
	if min.FrequencyHz != 683e6 || min.VoltageV != 1.0 {
		t.Fatalf("min OP = %v, want (1.0V, 683MHz)", min)
	}
}

func TestPeriodPs(t *testing.T) {
	op := OperatingPoint{VoltageV: 1, FrequencyHz: 1e9}
	if got := op.PeriodPs(); got != 1000 {
		t.Fatalf("1 GHz period = %d ps, want 1000", got)
	}
	op = OperatingPoint{VoltageV: 1, FrequencyHz: 1165e6}
	if got := op.PeriodPs(); got != 858 {
		t.Fatalf("1165 MHz period = %d ps, want 858", got)
	}
}

func TestClamp(t *testing.T) {
	tbl := TitanX()
	for _, tc := range []struct{ in, want int }{
		{-5, 0}, {0, 0}, {3, 3}, {5, 5}, {6, 5}, {100, 5},
	} {
		if got := tbl.Clamp(tc.in); got != tc.want {
			t.Errorf("Clamp(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRelativeSpeedMonotone(t *testing.T) {
	tbl := TitanX()
	prev := 0.0
	for i := 0; i < tbl.Len(); i++ {
		s := tbl.RelativeSpeed(i)
		if s <= prev {
			t.Fatalf("RelativeSpeed(%d)=%g not increasing (prev %g)", i, s, prev)
		}
		prev = s
	}
	if got := tbl.RelativeSpeed(tbl.Default()); got != 1.0 {
		t.Fatalf("RelativeSpeed(default) = %g, want 1.0", got)
	}
}

func TestMinLevelForLoss(t *testing.T) {
	tbl := TitanX()
	// Zero budget → default level only.
	if got := tbl.MinLevelForLoss(0); got != tbl.Default() {
		t.Fatalf("MinLevelForLoss(0) = %d, want default %d", got, tbl.Default())
	}
	// Huge budget → slowest level.
	if got := tbl.MinLevelForLoss(10); got != 0 {
		t.Fatalf("MinLevelForLoss(10) = %d, want 0", got)
	}
	// The chosen level's ideal slowdown must respect the budget, and the
	// next slower level must exceed it.
	fd := tbl.Point(tbl.Default()).FrequencyHz
	for _, budget := range []float64{0.05, 0.10, 0.20, 0.30, 0.50} {
		lvl := tbl.MinLevelForLoss(budget)
		slowdown := fd/tbl.Point(lvl).FrequencyHz - 1
		if slowdown > budget {
			t.Errorf("budget %.2f: level %d slowdown %.3f exceeds budget", budget, lvl, slowdown)
		}
		if lvl > 0 {
			below := fd/tbl.Point(lvl-1).FrequencyHz - 1
			if below <= budget {
				t.Errorf("budget %.2f: level %d-1 slowdown %.3f also fits; not minimal", budget, lvl, below)
			}
		}
	}
}

func TestMinLevelForLossProperty(t *testing.T) {
	tbl := TitanX()
	f := func(raw uint16) bool {
		budget := float64(raw) / float64(1<<16) // [0,1)
		lvl := tbl.MinLevelForLoss(budget)
		if lvl < 0 || lvl >= tbl.Len() {
			return false
		}
		fd := tbl.Point(tbl.Default()).FrequencyHz
		return fd/tbl.Point(lvl).FrequencyHz-1 <= budget
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestPointsReturnsCopy(t *testing.T) {
	tbl := TitanX()
	pts := tbl.Points()
	pts[0].FrequencyHz = 1
	if tbl.Point(0).FrequencyHz == 1 {
		t.Fatal("Points() exposed internal state")
	}
}
