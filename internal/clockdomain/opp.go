// Package clockdomain defines voltage/frequency operating points,
// per-cluster clock domains, and the integrated-voltage-regulator (IVR)
// transition model used by microsecond-scale DVFS.
//
// The operating-point table follows the six V/f points the paper adopts
// from Guerreiro et al. (HPCA'18) for the Nvidia GeForce GTX Titan X:
// (1.0 V, 683 MHz) up to (1.155 V, 1165 MHz).
package clockdomain

import (
	"fmt"
	"sort"
)

// OperatingPoint is a single voltage/frequency pair a clock domain can run
// at. Frequency is stored in Hz and voltage in volts.
type OperatingPoint struct {
	VoltageV    float64
	FrequencyHz float64
}

// PeriodPs returns the clock period of the operating point in integer
// picoseconds. The simulator keeps all time in integer picoseconds so that
// multi-clock-domain execution is exactly deterministic.
func (op OperatingPoint) PeriodPs() int64 {
	return int64(1e12 / op.FrequencyHz)
}

func (op OperatingPoint) String() string {
	return fmt.Sprintf("(%.3fV, %.0fMHz)", op.VoltageV, op.FrequencyHz/1e6)
}

// Table is an immutable, ascending-frequency list of operating points.
// Index 0 is the slowest point; index len-1 the fastest.
type Table struct {
	points []OperatingPoint
}

// NewTable builds a Table from the given points, sorting them by ascending
// frequency. It returns an error if fewer than two points are supplied, if
// any frequency or voltage is non-positive, or if voltage is not
// non-decreasing with frequency (a physically inconsistent table).
func NewTable(points []OperatingPoint) (*Table, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("clockdomain: table needs at least 2 operating points, got %d", len(points))
	}
	ps := make([]OperatingPoint, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].FrequencyHz < ps[j].FrequencyHz })
	for i, p := range ps {
		if p.FrequencyHz <= 0 || p.VoltageV <= 0 {
			return nil, fmt.Errorf("clockdomain: operating point %d has non-positive V/f: %v", i, p)
		}
		if i > 0 && p.VoltageV < ps[i-1].VoltageV {
			return nil, fmt.Errorf("clockdomain: voltage must be non-decreasing with frequency: %v after %v", p, ps[i-1])
		}
	}
	return &Table{points: ps}, nil
}

// TitanX returns the six-point GTX Titan X table used throughout the paper.
func TitanX() *Table {
	t, err := NewTable([]OperatingPoint{
		{VoltageV: 1.000, FrequencyHz: 683e6},
		{VoltageV: 1.000, FrequencyHz: 780e6},
		{VoltageV: 1.000, FrequencyHz: 878e6},
		{VoltageV: 1.000, FrequencyHz: 975e6},
		{VoltageV: 1.100, FrequencyHz: 1100e6},
		{VoltageV: 1.155, FrequencyHz: 1165e6},
	})
	if err != nil {
		panic("clockdomain: TitanX table is invalid: " + err.Error())
	}
	return t
}

// Len returns the number of operating points.
func (t *Table) Len() int { return len(t.points) }

// Point returns the operating point at level i (0 = slowest).
// It panics if i is out of range, mirroring slice semantics.
func (t *Table) Point(i int) OperatingPoint { return t.points[i] }

// Default returns the index of the default (fastest) operating point.
func (t *Table) Default() int { return len(t.points) - 1 }

// Points returns a copy of the table's points in ascending frequency order.
func (t *Table) Points() []OperatingPoint {
	out := make([]OperatingPoint, len(t.points))
	copy(out, t.points)
	return out
}

// Clamp returns i clamped into the valid level range [0, Len()-1].
func (t *Table) Clamp(i int) int {
	if i < 0 {
		return 0
	}
	if i >= len(t.points) {
		return len(t.points) - 1
	}
	return i
}

// RelativeSpeed returns the frequency of level i divided by the frequency
// of the default level, i.e. the ideal compute-bound speed fraction.
func (t *Table) RelativeSpeed(i int) float64 {
	return t.points[t.Clamp(i)].FrequencyHz / t.points[t.Default()].FrequencyHz
}

// MinLevelForLoss returns the lowest level whose ideal compute-bound
// slowdown (fDefault/f - 1) does not exceed maxLoss. This is the
// upper bound any perf-loss-constrained policy could pick for a fully
// compute-bound workload.
func (t *Table) MinLevelForLoss(maxLoss float64) int {
	fd := t.points[t.Default()].FrequencyHz
	for i := 0; i < len(t.points); i++ {
		slowdown := fd/t.points[i].FrequencyHz - 1
		if slowdown <= maxLoss {
			return i
		}
	}
	return t.Default()
}
